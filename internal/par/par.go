// Package par provides the small deterministic-parallelism toolkit
// the hot kernels (SOM batch training, agglomerative linkage, k-means
// assignment) share: contiguous range splitting across a bounded
// worker pool, and fixed-shard partitioning whose boundaries depend
// only on the problem size — never on the worker count — so that
// floating-point reductions performed shard-by-shard in index order
// produce bit-identical results for any parallelism level.
//
// The package deliberately has no clever scheduling: every helper
// spawns at most `workers` goroutines, hands each a statically
// computed contiguous range, and waits. That keeps the parallel paths
// trivially race-free (disjoint writes) and keeps results a pure
// function of the inputs.
package par

import (
	"runtime"
	"sync"
	"time"

	"hmeans/internal/obs"
)

// Resolve normalizes a requested parallelism level: values below 1
// mean "serial" (1). Callers that want "all cores" should pass
// Auto().
func Resolve(workers int) int {
	if workers < 1 {
		return 1
	}
	return workers
}

// Auto returns the worker count for "use the whole machine":
// runtime.NumCPU().
func Auto() int { return runtime.NumCPU() }

// Range describes a contiguous half-open index interval [Start, End).
type Range struct {
	Start, End int
}

// Split partitions [0, n) into at most `parts` contiguous ranges of
// near-equal length (the first n%parts ranges are one longer). It
// returns fewer ranges when n < parts; it never returns empty ranges.
func Split(n, parts int) []Range {
	if n <= 0 {
		return nil
	}
	if parts < 1 {
		parts = 1
	}
	if parts > n {
		parts = n
	}
	out := make([]Range, 0, parts)
	base, rem := n/parts, n%parts
	start := 0
	for i := 0; i < parts; i++ {
		size := base
		if i < rem {
			size++
		}
		out = append(out, Range{Start: start, End: start + size})
		start += size
	}
	return out
}

// For runs body over [0, n) split into `workers` contiguous chunks,
// one goroutine per chunk, and waits for all of them. With workers <= 1
// (or n small) it runs inline on the calling goroutine. Each body
// invocation owns its range exclusively, so bodies may write to
// per-index slots of shared slices without synchronization. Results
// must not depend on chunk boundaries if worker-count-invariant output
// is required — use FixedShards for order-sensitive reductions.
func For(workers, n int, body func(start, end int)) {
	workers = Resolve(workers)
	if workers == 1 || n <= 1 {
		if n > 0 {
			body(0, n)
		}
		return
	}
	ranges := Split(n, workers)
	if len(ranges) == 1 {
		body(ranges[0].Start, ranges[0].End)
		return
	}
	// The observer gate is one atomic load per For call; the timed
	// path exists in a separate function so the common disabled path
	// stays exactly the historical code.
	if o := obs.Default(); o.Active() {
		forTimed(o, ranges, body)
		return
	}
	var wg sync.WaitGroup
	wg.Add(len(ranges) - 1)
	for _, r := range ranges[1:] {
		go func(r Range) {
			defer wg.Done()
			body(r.Start, r.End)
		}(r)
	}
	body(ranges[0].Start, ranges[0].End)
	wg.Wait()
}

// imbalanceBounds are the shared histogram buckets for the
// max/mean shard-duration ratio: 1 is a perfectly balanced split,
// and with W workers a ratio near W means one chunk did all the
// work.
var imbalanceBounds = []float64{1.05, 1.1, 1.25, 1.5, 2, 3, 5, 10}

// forTimed is For's instrumented twin: each chunk is timed, and the
// chunk-duration imbalance (max/mean) is recorded so traces expose
// how evenly the contiguous split shared the work.
func forTimed(o *obs.Observer, ranges []Range, body func(start, end int)) {
	durs := make([]time.Duration, len(ranges))
	var wg sync.WaitGroup
	wg.Add(len(ranges) - 1)
	for i, r := range ranges[1:] {
		go func(i int, r Range) {
			defer wg.Done()
			t0 := time.Now()
			body(r.Start, r.End)
			durs[i+1] = time.Since(t0)
		}(i, r)
	}
	t0 := time.Now()
	body(ranges[0].Start, ranges[0].End)
	durs[0] = time.Since(t0)
	wg.Wait()
	recordImbalance(o, "par.for", durs)
}

// recordImbalance folds one timed fan-out into the registry: a call
// counter, a chunk counter, and the max/mean duration ratio.
func recordImbalance(o *obs.Observer, prefix string, durs []time.Duration) {
	reg := o.Metrics()
	reg.Counter(prefix + ".calls").Add(1)
	reg.Counter(prefix + ".chunks").Add(int64(len(durs)))
	var sum, max time.Duration
	for _, d := range durs {
		sum += d
		if d > max {
			max = d
		}
	}
	if sum <= 0 {
		return
	}
	mean := float64(sum) / float64(len(durs))
	ratio := float64(max) / mean
	reg.Gauge(prefix + ".imbalance").Set(ratio)
	reg.Histogram(prefix+".imbalance_hist", imbalanceBounds...).Observe(ratio)
}

// FixedShards partitions [0, n) into shards of exactly `shardSize`
// indices (the last shard may be shorter) — boundaries depend only on
// n and shardSize, never on the worker count — and runs body once per
// shard across the pool. The shard index lets the body write into a
// per-shard accumulator; reducing those accumulators in shard order
// afterwards yields bit-identical floating-point results regardless
// of parallelism. It returns the number of shards.
func FixedShards(workers, n, shardSize int, body func(shard, start, end int)) int {
	if n <= 0 {
		return 0
	}
	if shardSize < 1 {
		shardSize = 1
	}
	shards := (n + shardSize - 1) / shardSize
	run := func(shard int) {
		start := shard * shardSize
		end := start + shardSize
		if end > n {
			end = n
		}
		body(shard, start, end)
	}
	workers = Resolve(workers)
	if workers == 1 || shards == 1 {
		for s := 0; s < shards; s++ {
			run(s)
		}
		return shards
	}
	if workers > shards {
		workers = shards
	}
	// The observer gate costs one atomic load per FixedShards call;
	// the timed twin lives apart so the disabled path is unchanged.
	if o := obs.Default(); o.Active() {
		return shardsTimed(o, workers, shards, run)
	}
	// Static interleaved assignment: worker w owns shards w, w+W,
	// w+2W, … Shard boundaries are fixed, so which worker computes a
	// shard cannot change its contents.
	var wg sync.WaitGroup
	wg.Add(workers - 1)
	for w := 1; w < workers; w++ {
		go func(w int) {
			defer wg.Done()
			for s := w; s < shards; s += workers {
				run(s)
			}
		}(w)
	}
	for s := 0; s < shards; s += workers {
		run(s)
	}
	wg.Wait()
	return shards
}

// shardsTimed is FixedShards' instrumented twin: per-shard wall
// times feed the shard-imbalance metrics. Shard assignment is the
// same static interleave, so results stay bit-identical.
func shardsTimed(o *obs.Observer, workers, shards int, run func(shard int)) int {
	durs := make([]time.Duration, shards)
	timed := func(s int) {
		t0 := time.Now()
		run(s)
		durs[s] = time.Since(t0)
	}
	var wg sync.WaitGroup
	wg.Add(workers - 1)
	for w := 1; w < workers; w++ {
		go func(w int) {
			defer wg.Done()
			for s := w; s < shards; s += workers {
				timed(s)
			}
		}(w)
	}
	for s := 0; s < shards; s += workers {
		timed(s)
	}
	wg.Wait()
	recordImbalance(o, "par.shards", durs)
	return shards
}
