// Package par provides the small deterministic-parallelism toolkit
// the hot kernels (SOM batch training, agglomerative linkage, k-means
// assignment) share: contiguous range splitting across a bounded
// worker pool, and fixed-shard partitioning whose boundaries depend
// only on the problem size — never on the worker count — so that
// floating-point reductions performed shard-by-shard in index order
// produce bit-identical results for any parallelism level.
//
// The package deliberately has no clever scheduling: every helper
// spawns at most `workers` goroutines, hands each a statically
// computed contiguous range, and waits. That keeps the parallel paths
// trivially race-free (disjoint writes) and keeps results a pure
// function of the inputs.
//
// # Containment and cancellation
//
// A panic inside a worker body never takes the process down from an
// unrecoverable goroutine: every body invocation runs guarded, and a
// recovered panic is re-raised on the *calling* goroutine as a
// *PanicError carrying the shard identity and the worker stack — or,
// on the ForCtx/FixedShardsCtx variants, returned as an error. The
// ctx variants additionally stop dispatching new chunks/shards once
// the context fires (in-flight bodies run to completion, so partial
// output must be discarded on error) and are bit-identical to the
// plain variants whenever the context never fires.
package par

import (
	"context"
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"
	"time"

	"hmeans/internal/obs"
)

// Resolve normalizes a requested parallelism level: values below 1
// mean "serial" (1). Callers that want "all cores" should pass
// Auto().
func Resolve(workers int) int {
	if workers < 1 {
		return 1
	}
	return workers
}

// Auto returns the worker count for "use the whole machine":
// runtime.NumCPU().
func Auto() int { return runtime.NumCPU() }

// Range describes a contiguous half-open index interval [Start, End).
type Range struct {
	Start, End int
}

// Split partitions [0, n) into at most `parts` contiguous ranges of
// near-equal length (the first n%parts ranges are one longer). It
// returns fewer ranges when n < parts; it never returns empty ranges.
func Split(n, parts int) []Range {
	if n <= 0 {
		return nil
	}
	if parts < 1 {
		parts = 1
	}
	if parts > n {
		parts = n
	}
	out := make([]Range, 0, parts)
	base, rem := n/parts, n%parts
	start := 0
	for i := 0; i < parts; i++ {
		size := base
		if i < rem {
			size++
		}
		out = append(out, Range{Start: start, End: start + size})
		start += size
	}
	return out
}

// PanicError is a worker panic recovered by the pool, carrying the
// identity of the shard that raised it. For and FixedShards re-raise
// it on the calling goroutine (where defer/recover works); ForCtx and
// FixedShardsCtx return it as an ordinary error.
type PanicError struct {
	// Op names the entry point ("par.For" or "par.FixedShards").
	Op string
	// Shard is the chunk index (For) or shard index (FixedShards)
	// whose body panicked.
	Shard int
	// Start and End bound the index range the shard owned.
	Start, End int
	// Value is the recovered panic value.
	Value any
	// Stack is the worker goroutine's stack at recovery time.
	Stack []byte
}

// Error formats the panic with its shard identity.
func (e *PanicError) Error() string {
	return fmt.Sprintf("%s: worker panic on shard %d [%d,%d): %v", e.Op, e.Shard, e.Start, e.End, e.Value)
}

// Unwrap exposes the panic value when it was itself an error.
func (e *PanicError) Unwrap() error {
	if err, ok := e.Value.(error); ok {
		return err
	}
	return nil
}

// guard runs body over r, converting a panic into a *PanicError.
func guard(op string, shard int, r Range, body func(start, end int)) (pe *PanicError) {
	defer func() {
		if v := recover(); v != nil {
			pe = &PanicError{Op: op, Shard: shard, Start: r.Start, End: r.End, Value: v, Stack: debug.Stack()}
		}
	}()
	body(r.Start, r.End)
	return nil
}

// guardShard is guard for shard-indexed bodies. It is a top-level
// function (not a closure over body) so the serial FixedShards path
// stays allocation-free: a long-lived caller handing in a reused func
// value runs whole shard sweeps with zero heap traffic.
func guardShard(op string, shard, start, end int, body func(shard, start, end int)) (pe *PanicError) {
	defer func() {
		if v := recover(); v != nil {
			pe = &PanicError{Op: op, Shard: shard, Start: start, End: end, Value: v, Stack: debug.Stack()}
		}
	}()
	body(shard, start, end)
	return nil
}

// For runs body over [0, n) split into `workers` contiguous chunks,
// one goroutine per chunk, and waits for all of them. With workers <= 1
// (or n small) it runs inline on the calling goroutine. Each body
// invocation owns its range exclusively, so bodies may write to
// per-index slots of shared slices without synchronization. Results
// must not depend on chunk boundaries if worker-count-invariant output
// is required — use FixedShards for order-sensitive reductions.
//
// A body panic — even on a spawned worker — surfaces as a *PanicError
// panic on the calling goroutine after every other chunk has finished
// or been skipped, so callers can recover it.
func For(workers, n int, body func(start, end int)) {
	if err := forCtx(context.Background(), workers, n, body); err != nil {
		// A background context never fires, so the only possible
		// error is a contained worker panic: re-raise it where the
		// caller can recover.
		panic(err)
	}
}

// ForCtx is For with cooperative cancellation and panic containment:
// chunks not yet started when ctx fires are skipped and ctx's error is
// returned; a body panic is returned as a *PanicError (lowest shard
// index wins when several chunks fail). Cancellation granularity is
// one chunk — an in-flight body always runs to completion — and any
// output must be discarded when the error is non-nil. With a context
// that never fires the chunk structure, execution order and results
// are bit-identical to For.
func ForCtx(ctx context.Context, workers, n int, body func(start, end int)) error {
	if ctx == nil {
		ctx = context.Background()
	}
	return forCtx(ctx, workers, n, body)
}

func forCtx(ctx context.Context, workers, n int, body func(start, end int)) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	workers = Resolve(workers)
	if workers == 1 || n <= 1 {
		if n > 0 {
			if pe := guard("par.For", 0, Range{Start: 0, End: n}, body); pe != nil {
				return pe
			}
		}
		return nil
	}
	ranges := Split(n, workers)
	if len(ranges) == 1 {
		if pe := guard("par.For", 0, ranges[0], body); pe != nil {
			return pe
		}
		return nil
	}
	// The observer gate is one atomic load per For call; when active,
	// each chunk is timed and the chunk-duration imbalance (max/mean)
	// is recorded so traces expose how evenly the split shared work.
	var durs []time.Duration
	o := obs.Default()
	if o.Active() {
		durs = make([]time.Duration, len(ranges))
	}
	panics := make([]*PanicError, len(ranges))
	done := ctx.Done()
	var stopped atomic.Bool
	runChunk := func(i int) {
		if stopped.Load() {
			return
		}
		select {
		case <-done:
			stopped.Store(true)
			return
		default:
		}
		if durs != nil {
			t0 := time.Now()
			panics[i] = guard("par.For", i, ranges[i], body)
			durs[i] = time.Since(t0)
		} else {
			panics[i] = guard("par.For", i, ranges[i], body)
		}
		if panics[i] != nil {
			stopped.Store(true) // fail fast: skip chunks not yet started
		}
	}
	var wg sync.WaitGroup
	wg.Add(len(ranges) - 1)
	for i := range ranges[1:] {
		go func(i int) {
			defer wg.Done()
			runChunk(i)
		}(i + 1)
	}
	runChunk(0)
	wg.Wait()
	if durs != nil {
		recordImbalance(o, "par.for", durs)
	}
	for _, pe := range panics {
		if pe != nil {
			return pe
		}
	}
	if stopped.Load() {
		return ctx.Err()
	}
	return nil
}

// imbalanceBounds are the shared histogram buckets for the
// max/mean shard-duration ratio: 1 is a perfectly balanced split,
// and with W workers a ratio near W means one chunk did all the
// work.
var imbalanceBounds = []float64{1.05, 1.1, 1.25, 1.5, 2, 3, 5, 10}

// recordImbalance folds one timed fan-out into the registry: a call
// counter, a chunk counter, and the max/mean duration ratio.
func recordImbalance(o *obs.Observer, prefix string, durs []time.Duration) {
	reg := o.Metrics()
	reg.Counter(prefix + ".calls").Add(1)
	reg.Counter(prefix + ".chunks").Add(int64(len(durs)))
	var sum, max time.Duration
	for _, d := range durs {
		sum += d
		if d > max {
			max = d
		}
	}
	if sum <= 0 {
		return
	}
	mean := float64(sum) / float64(len(durs))
	ratio := float64(max) / mean
	reg.Gauge(prefix + ".imbalance").Set(ratio)
	reg.Histogram(prefix+".imbalance_hist", imbalanceBounds...).Observe(ratio)
}

// FixedShards partitions [0, n) into shards of exactly `shardSize`
// indices (the last shard may be shorter) — boundaries depend only on
// n and shardSize, never on the worker count — and runs body once per
// shard across the pool. The shard index lets the body write into a
// per-shard accumulator; reducing those accumulators in shard order
// afterwards yields bit-identical floating-point results regardless
// of parallelism. It returns the number of shards.
//
// Like For, a body panic is contained and re-raised on the calling
// goroutine as a *PanicError with the offending shard's identity.
func FixedShards(workers, n, shardSize int, body func(shard, start, end int)) int {
	shards, err := fixedShardsCtx(context.Background(), workers, n, shardSize, body)
	if err != nil {
		panic(err)
	}
	return shards
}

// FixedShardsCtx is FixedShards with cooperative cancellation and
// panic containment: once ctx fires no further shard starts and ctx's
// error is returned (partial output must be discarded); a body panic
// is returned as a *PanicError. Cancellation granularity is one shard
// — much finer than ForCtx's one chunk per worker — which makes this
// the preferred fan-out for deadline-sensitive kernels. With a
// context that never fires the shard boundaries, assignment and
// results are bit-identical to FixedShards.
func FixedShardsCtx(ctx context.Context, workers, n, shardSize int, body func(shard, start, end int)) (int, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	return fixedShardsCtx(ctx, workers, n, shardSize, body)
}

func fixedShardsCtx(ctx context.Context, workers, n, shardSize int, body func(shard, start, end int)) (int, error) {
	if n <= 0 {
		return 0, nil
	}
	if shardSize < 1 {
		shardSize = 1
	}
	shards := (n + shardSize - 1) / shardSize
	if err := ctx.Err(); err != nil {
		return shards, err
	}
	done := ctx.Done()
	workers = Resolve(workers)
	if workers == 1 || shards == 1 {
		// Inline loop without the run closure: the serial path is the
		// steady-state hot loop of single-worker kernels and must not
		// allocate per call.
		for s := 0; s < shards; s++ {
			select {
			case <-done:
				return shards, ctx.Err()
			default:
			}
			start := s * shardSize
			end := start + shardSize
			if end > n {
				end = n
			}
			if pe := guardShard("par.FixedShards", s, start, end, body); pe != nil {
				return shards, pe
			}
		}
		return shards, nil
	}
	if workers > shards {
		workers = shards
	}
	run := func(shard int) *PanicError {
		start := shard * shardSize
		end := start + shardSize
		if end > n {
			end = n
		}
		return guardShard("par.FixedShards", shard, start, end, body)
	}
	// The observer gate costs one atomic load per FixedShards call;
	// when active, per-shard wall times feed the shard-imbalance
	// metrics. Shard assignment is the same static interleave either
	// way — worker w owns shards w, w+W, w+2W, … — and shard
	// boundaries are fixed, so which worker computes a shard cannot
	// change its contents.
	var durs []time.Duration
	o := obs.Default()
	if o.Active() {
		durs = make([]time.Duration, shards)
	}
	panics := make([]*PanicError, shards)
	var stopped atomic.Bool
	runLoop := func(w int) {
		for s := w; s < shards; s += workers {
			if stopped.Load() {
				return
			}
			select {
			case <-done:
				stopped.Store(true)
				return
			default:
			}
			if durs != nil {
				t0 := time.Now()
				panics[s] = run(s)
				durs[s] = time.Since(t0)
			} else {
				panics[s] = run(s)
			}
			if panics[s] != nil {
				stopped.Store(true)
				return
			}
		}
	}
	var wg sync.WaitGroup
	wg.Add(workers - 1)
	for w := 1; w < workers; w++ {
		go func(w int) {
			defer wg.Done()
			runLoop(w)
		}(w)
	}
	runLoop(0)
	wg.Wait()
	if durs != nil {
		recordImbalance(o, "par.shards", durs)
	}
	for _, pe := range panics {
		if pe != nil {
			return shards, pe
		}
	}
	if stopped.Load() {
		return shards, ctx.Err()
	}
	return shards, nil
}
