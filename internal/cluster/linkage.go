// Package cluster implements agglomerative hierarchical clustering
// with selectable linkage, dendrogram construction, and the cut
// operations (by cluster count or by merging distance) the
// hierarchical means consume.
//
// The paper's configuration is complete linkage — cluster-to-cluster
// distance is the distance of the furthest pair of points,
// d(wᵢ, wⱼ) = max d(x, y) — over Euclidean point distance, applied to
// the 2-D SOM positions of the workloads. Single, average and Ward
// linkage are provided for the ablation benches.
package cluster

import (
	"fmt"

	"hmeans/internal/vecmath"
)

// Linkage selects the cluster-to-cluster distance definition.
type Linkage int

const (
	// Complete is the furthest-pair distance (the paper's choice).
	Complete Linkage = iota
	// Single is the nearest-pair distance.
	Single
	// Average is the unweighted mean pairwise distance (UPGMA).
	Average
	// Ward merges the pair minimizing the increase in total
	// within-cluster variance (implemented via the Lance–Williams
	// update on squared Euclidean distances).
	Ward
)

// String returns the linkage's name.
func (l Linkage) String() string {
	switch l {
	case Complete:
		return "complete"
	case Single:
		return "single"
	case Average:
		return "average"
	case Ward:
		return "ward"
	default:
		return "unknown"
	}
}

// update implements the Lance–Williams recurrence: the distance from
// the merger of clusters a (size na) and b (size nb) to another
// cluster c (size nc), given the pre-merge distances dac, dbc and dab.
func (l Linkage) update(dac, dbc, dab float64, na, nb, nc int) float64 {
	switch l {
	case Complete:
		if dac > dbc {
			return dac
		}
		return dbc
	case Single:
		if dac < dbc {
			return dac
		}
		return dbc
	case Average:
		fa := float64(na) / float64(na+nb)
		fb := float64(nb) / float64(na+nb)
		return fa*dac + fb*dbc
	case Ward:
		// Operates on squared distances; Dendrogram takes care of
		// squaring inputs and unsquaring merge heights.
		n := float64(na + nb + nc)
		return (float64(na+nc)*dac + float64(nb+nc)*dbc - float64(nc)*dab) / n
	default:
		panic(fmt.Sprintf("cluster: unknown linkage %d", int(l)))
	}
}

// mergeUpdate applies the Lance–Williams recurrence for the merge of
// slots a and b in place on a condensed working matrix: for every
// other active slot k (ascending, matching the historical dense
// update order) the distance d(a∪b, k) replaces slot (a, k). Because
// a condensed matrix stores one shared slot per symmetric pair, the
// single Set updates "both halves" at once and can never leave a
// stale mirror entry. The pass allocates nothing.
//
// This is the retained reference implementation: the agglomeration
// paths run mergeUpdateCondensed, which is proven bit-identical to
// this pass by TestMergeUpdateCondensedMatchesReference.
func (l Linkage) mergeUpdate(w *vecmath.CondensedMatrix, active []bool, size []int, a, b int) {
	dab := w.At(a, b)
	n := w.N()
	for k := 0; k < n; k++ {
		if !active[k] || k == a || k == b {
			continue
		}
		w.Set(a, k, l.update(w.At(a, k), w.At(b, k), dab, size[a], size[b], size[k]))
	}
}

// mergeUpdateCondensed is mergeUpdate with the condensed addressing
// done incrementally instead of through Index's per-slot
// multiply-and-bounds-check. The ascending-k walk splits into three
// ranges — below both merged slots, between them, above both — and in
// each range the offsets of pairs (k, a) and (k, b) move by a fixed
// stride per step: down a column by n−k−2, along a row tail by 1. The
// update calls, their arguments and their order are exactly the
// reference pass's, so the float64 instantiation is bit-identical to
// mergeUpdate; the float32 instantiation widens each operand to
// float64 for the recurrence and rounds once on store.
func mergeUpdateCondensed[F vecmath.Float](l Linkage, w *vecmath.Condensed[F], active []bool, size []int, a, b int) {
	data := w.Data()
	n := w.N()
	dab := float64(w.At(a, b))
	na, nb := size[a], size[b]
	lo, hi := a, b
	if lo > hi {
		lo, hi = hi, lo
	}
	aIsLo := a == lo
	apply := func(kLo, kHi, k int) {
		sa, sb := kLo, kHi
		if !aIsLo {
			sa, sb = kHi, kLo
		}
		data[sa] = F(l.update(float64(data[sa]), float64(data[sb]), dab, na, nb, size[k]))
	}
	// k < lo: both pair slots walk down columns lo and hi of row k.
	kLo, kHi := lo-1, hi-1 // idx(0, lo), idx(0, hi)
	for k := 0; k < lo; k++ {
		if active[k] {
			apply(kLo, kHi, k)
		}
		kLo += n - k - 2
		kHi += n - k - 2
	}
	// lo < k < hi: (lo, k) runs along lo's row tail, (k, hi) keeps
	// walking down column hi.
	loBase := w.Index0(lo) - lo - 1 // idx(lo, k) = loBase + k
	if lo+1 < n {
		kHi = w.Index0(lo+1) + hi - lo - 2 // idx(lo+1, hi)
	}
	for k := lo + 1; k < hi; k++ {
		if active[k] {
			apply(loBase+k, kHi, k)
		}
		kHi += n - k - 2
	}
	// k > hi: both pair slots run along the row tails of lo and hi.
	hiBase := w.Index0(hi) - hi - 1
	for k := hi + 1; k < n; k++ {
		if active[k] {
			apply(loBase+k, hiBase+k, k)
		}
	}
}
