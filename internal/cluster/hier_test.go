package cluster

import (
	"errors"
	"math"
	"testing"
	"testing/quick"

	"hmeans/internal/rng"
	"hmeans/internal/vecmath"
)

// fourPoints is a tiny 1-D instance with an obvious structure:
// {0, 1} and {10, 12} are two clear clusters.
func fourPoints() []vecmath.Vector {
	return []vecmath.Vector{{0}, {1}, {10}, {12}}
}

func TestDendrogramBasics(t *testing.T) {
	d, err := NewDendrogram(fourPoints(), vecmath.Euclidean, Complete)
	if err != nil {
		t.Fatal(err)
	}
	if d.Len() != 4 {
		t.Fatalf("Len = %d, want 4", d.Len())
	}
	if len(d.Merges()) != 3 {
		t.Fatalf("merges = %d, want 3", len(d.Merges()))
	}
	// First merge must be {0,1} at distance 1 (closest pair).
	m0 := d.Merges()[0]
	if m0.A != 0 || m0.B != 1 || m0.Distance != 1 || m0.Size != 2 {
		t.Fatalf("first merge = %+v, want {0 1 1 2}", m0)
	}
	// Second: {10,12} at distance 2.
	m1 := d.Merges()[1]
	if m1.A != 2 || m1.B != 3 || m1.Distance != 2 {
		t.Fatalf("second merge = %+v", m1)
	}
	// Final complete-linkage merge: furthest pair is |0-12| = 12.
	m2 := d.Merges()[2]
	if m2.Distance != 12 || m2.Size != 4 {
		t.Fatalf("final merge = %+v, want distance 12 size 4", m2)
	}
}

func TestSingleLinkageFinalMerge(t *testing.T) {
	d, err := NewDendrogram(fourPoints(), vecmath.Euclidean, Single)
	if err != nil {
		t.Fatal(err)
	}
	// Single linkage: closest pair across {0,1} and {10,12} is |1-10| = 9.
	if got := d.Merges()[2].Distance; got != 9 {
		t.Fatalf("single-linkage final distance = %v, want 9", got)
	}
}

func TestAverageLinkageFinalMerge(t *testing.T) {
	d, err := NewDendrogram(fourPoints(), vecmath.Euclidean, Average)
	if err != nil {
		t.Fatal(err)
	}
	// UPGMA: mean of {10,12,9,11} = 10.5.
	if got := d.Merges()[2].Distance; !almostEq(got, 10.5, 1e-9) {
		t.Fatalf("average-linkage final distance = %v, want 10.5", got)
	}
}

func almostEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestErrors(t *testing.T) {
	if _, err := NewDendrogram(nil, vecmath.Euclidean, Complete); !errors.Is(err, ErrNoPoints) {
		t.Error("empty input accepted")
	}
	bad := vecmath.NewMatrix(2, 3)
	if _, err := FromDistanceMatrix(bad, Complete); err == nil {
		t.Error("non-square matrix accepted")
	}
	asym := vecmath.FromRows([][]float64{{0, 1}, {2, 0}})
	if _, err := FromDistanceMatrix(asym, Complete); err == nil {
		t.Error("asymmetric matrix accepted")
	}
	neg := vecmath.FromRows([][]float64{{0, -1}, {-1, 0}})
	if _, err := FromDistanceMatrix(neg, Complete); err == nil {
		t.Error("negative distances accepted")
	}
}

func TestSinglePoint(t *testing.T) {
	d, err := NewDendrogram([]vecmath.Vector{{5, 5}}, vecmath.Euclidean, Complete)
	if err != nil {
		t.Fatal(err)
	}
	if d.Len() != 1 || len(d.Merges()) != 0 {
		t.Fatalf("single point: Len=%d merges=%d", d.Len(), len(d.Merges()))
	}
	a, err := d.CutK(1)
	if err != nil || a.K != 1 || a.Labels[0] != 0 {
		t.Fatalf("CutK(1) = %+v, %v", a, err)
	}
}

func TestCutK(t *testing.T) {
	d, err := NewDendrogram(fourPoints(), vecmath.Euclidean, Complete)
	if err != nil {
		t.Fatal(err)
	}
	a2, err := d.CutK(2)
	if err != nil {
		t.Fatal(err)
	}
	if a2.K != 2 {
		t.Fatalf("K = %d, want 2", a2.K)
	}
	// Canonical labels: leaf 0's cluster is 0.
	want := []int{0, 0, 1, 1}
	for i, w := range want {
		if a2.Labels[i] != w {
			t.Fatalf("CutK(2) labels = %v, want %v", a2.Labels, want)
		}
	}
	a1, _ := d.CutK(1)
	if a1.K != 1 {
		t.Fatal("CutK(1) should be a single cluster")
	}
	a4, _ := d.CutK(4)
	if a4.K != 4 {
		t.Fatal("CutK(n) should be all singletons")
	}
	for i, l := range a4.Labels {
		if l != i {
			t.Fatalf("singleton labels not canonical: %v", a4.Labels)
		}
	}
	if _, err := d.CutK(0); err == nil {
		t.Error("CutK(0) accepted")
	}
	if _, err := d.CutK(5); err == nil {
		t.Error("CutK(n+1) accepted")
	}
}

func TestCutDistance(t *testing.T) {
	d, err := NewDendrogram(fourPoints(), vecmath.Euclidean, Complete)
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		dist  float64
		wantK int
	}{
		{0.5, 4}, // below every merge
		{1, 3},   // exactly the first merge height: merged
		{1.5, 3}, //
		{2, 2},   //
		{5, 2},   // between 2 and 12
		{12, 1},  // everything
		{99, 1},  //
	}
	for _, c := range cases {
		if got := d.CutDistance(c.dist).K; got != c.wantK {
			t.Errorf("CutDistance(%v).K = %d, want %d", c.dist, got, c.wantK)
		}
		if got := d.KAtDistance(c.dist); got != c.wantK {
			t.Errorf("KAtDistance(%v) = %d, want %d", c.dist, got, c.wantK)
		}
	}
}

func TestCutsByK(t *testing.T) {
	d, err := NewDendrogram(fourPoints(), vecmath.Euclidean, Complete)
	if err != nil {
		t.Fatal(err)
	}
	cuts, err := d.CutsByK(2, 8)
	if err != nil {
		t.Fatal(err)
	}
	// Only k=2,3,4 are valid for 4 points.
	if len(cuts) != 3 {
		t.Fatalf("CutsByK returned %d cuts, want 3", len(cuts))
	}
	for k, a := range cuts {
		if a.K != k {
			t.Fatalf("cut for k=%d has K=%d", k, a.K)
		}
	}
	if _, err := d.CutsByK(5, 2); err == nil {
		t.Error("inverted range accepted")
	}
}

func TestDistanceForK(t *testing.T) {
	d, err := NewDendrogram(fourPoints(), vecmath.Euclidean, Complete)
	if err != nil {
		t.Fatal(err)
	}
	for k := 1; k <= 4; k++ {
		dist, _, _, ok := d.DistanceForK(k)
		if !ok {
			t.Fatalf("DistanceForK(%d) not achievable", k)
		}
		if got := d.KAtDistance(dist); got != k {
			t.Fatalf("cut at DistanceForK(%d)=%v yields %d clusters", k, dist, got)
		}
	}
	if _, _, _, ok := d.DistanceForK(0); ok {
		t.Error("DistanceForK(0) should fail")
	}
	if _, _, _, ok := d.DistanceForK(5); ok {
		t.Error("DistanceForK(n+1) should fail")
	}
}

func TestAssignmentMembersAndSizes(t *testing.T) {
	d, _ := NewDendrogram(fourPoints(), vecmath.Euclidean, Complete)
	a, _ := d.CutK(2)
	mem := a.Members()
	if len(mem) != 2 || len(mem[0]) != 2 || len(mem[1]) != 2 {
		t.Fatalf("Members = %v", mem)
	}
	sizes := a.Sizes()
	if sizes[0] != 2 || sizes[1] != 2 {
		t.Fatalf("Sizes = %v", sizes)
	}
}

func randomPoints(n, dim int, seed uint64) []vecmath.Vector {
	r := rng.New(seed)
	pts := make([]vecmath.Vector, n)
	for i := range pts {
		pts[i] = make(vecmath.Vector, dim)
		for j := range pts[i] {
			pts[i][j] = r.NormFloat64() * 5
		}
	}
	return pts
}

// Property: merge heights are non-decreasing for the metric linkages.
func TestMergeMonotonicity(t *testing.T) {
	for _, l := range []Linkage{Complete, Single, Average, Ward} {
		l := l
		f := func(seed uint64) bool {
			pts := randomPoints(int(seed%10)+3, 3, seed)
			d, err := NewDendrogram(pts, vecmath.Euclidean, l)
			if err != nil {
				return false
			}
			hs := d.MergeDistances()
			for i := 1; i < len(hs); i++ {
				if hs[i] < hs[i-1]-1e-9 {
					return false
				}
			}
			return true
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
			t.Fatalf("linkage %v: %v", l, err)
		}
	}
}

// Property: CutK(k) always yields exactly k clusters with canonical
// labels and all leaves assigned.
func TestCutKProperties(t *testing.T) {
	f := func(seed uint64, kRaw uint8) bool {
		n := int(seed%12) + 2
		pts := randomPoints(n, 2, seed^0x5a5a)
		d, err := NewDendrogram(pts, vecmath.Euclidean, Complete)
		if err != nil {
			return false
		}
		k := int(kRaw)%n + 1
		a, err := d.CutK(k)
		if err != nil || a.K != k || len(a.Labels) != n {
			return false
		}
		// Canonical labelling: first occurrence of each label is in
		// increasing order.
		seen := -1
		for _, l := range a.Labels {
			if l > seen+1 {
				return false
			}
			if l == seen+1 {
				seen = l
			}
		}
		return seen == k-1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: cutting at a distance between merge heights m and m+1
// yields the same assignment as CutK with the corresponding k.
func TestCutDistanceConsistentWithCutK(t *testing.T) {
	f := func(seed uint64) bool {
		n := int(seed%8) + 3
		pts := randomPoints(n, 2, seed^0xfeed)
		d, err := NewDendrogram(pts, vecmath.Euclidean, Complete)
		if err != nil {
			return false
		}
		for k := 1; k <= n; k++ {
			dist, _, _, ok := d.DistanceForK(k)
			if !ok {
				continue // tied heights: unreachable by horizontal cut
			}
			byDist := d.CutDistance(dist)
			byK, err := d.CutK(k)
			if err != nil || byDist.K != k {
				return false
			}
			for i := range byK.Labels {
				if byK.Labels[i] != byDist.Labels[i] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: single-linkage merge heights are <= complete-linkage
// heights at every step (nested bound).
func TestSingleBelowComplete(t *testing.T) {
	f := func(seed uint64) bool {
		pts := randomPoints(int(seed%8)+3, 3, seed^0xbeef)
		ds, err1 := NewDendrogram(pts, vecmath.Euclidean, Single)
		dc, err2 := NewDendrogram(pts, vecmath.Euclidean, Complete)
		if err1 != nil || err2 != nil {
			return false
		}
		hs, hc := ds.MergeDistances(), dc.MergeDistances()
		// Compare the sorted sequences (the merge orders may differ).
		for i := range hs {
			if hs[i] > hc[i]+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestLinkageString(t *testing.T) {
	if Complete.String() != "complete" || Single.String() != "single" ||
		Average.String() != "average" || Ward.String() != "ward" || Linkage(9).String() != "unknown" {
		t.Fatal("Linkage.String names wrong")
	}
}

func TestWardPrefersCompactMerges(t *testing.T) {
	// Ward on two tight pairs + one outlier: the pairs merge first.
	pts := []vecmath.Vector{{0, 0}, {0.1, 0}, {5, 5}, {5.1, 5}, {20, 20}}
	d, err := NewDendrogram(pts, vecmath.Euclidean, Ward)
	if err != nil {
		t.Fatal(err)
	}
	m := d.Merges()
	first := map[int]bool{m[0].A: true, m[0].B: true}
	second := map[int]bool{m[1].A: true, m[1].B: true}
	if !(first[0] && first[1] || first[2] && first[3]) {
		t.Fatalf("first Ward merge = %+v, want a tight pair", m[0])
	}
	if !(second[0] && second[1] || second[2] && second[3]) {
		t.Fatalf("second Ward merge = %+v, want the other tight pair", m[1])
	}
}
