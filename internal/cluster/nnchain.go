package cluster

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"hmeans/internal/vecmath"
)

// NNChainDendrogram builds the same dendrogram as FromDistanceMatrix
// using the nearest-neighbour-chain algorithm: O(n²) time instead of
// the naive O(n³). Benchmark suites never need this, but anyone
// clustering thousands of program phases or basic-block vectors (the
// scale of the paper's related work) does.
//
// NN-chain is exact for the *reducible* linkages — complete, single,
// average and Ward all are: merging two clusters never brings either
// closer to a third than the nearer of the pair was. The chain may
// discover merges out of height order, so the merge list is sorted
// and cluster ids relabelled afterwards, yielding a tree identical to
// the naive algorithm's whenever the pairwise merge heights are
// distinct (with ties, an equivalent tree).
func NNChainDendrogram(points []vecmath.Vector, m vecmath.Metric, l Linkage) (*Dendrogram, error) {
	if len(points) == 0 {
		return nil, ErrNoPoints
	}
	// Build the distances directly in condensed form and hand them
	// over as the working matrix.
	return nnChainFromCondensed(vecmath.CondensedDistanceMatrix(m, points), l, true)
}

// NNChainFromDistanceMatrix is NNChainDendrogram over a precomputed
// symmetric distance matrix. Like FromDistanceMatrix it is a thin
// adapter: the dense matrix is condensed once and the chain runs
// natively on the condensed layout.
func NNChainFromDistanceMatrix(dm *vecmath.Matrix, l Linkage) (*Dendrogram, error) {
	cm, err := condenseChecked(dm)
	if err != nil {
		return nil, err
	}
	return nnChainFromCondensed(cm, l, true)
}

// NNChainFromCondensed is NNChainDendrogram over a precomputed
// condensed distance matrix. The input is not modified.
func NNChainFromCondensed(cm *vecmath.CondensedMatrix, l Linkage) (*Dendrogram, error) {
	return nnChainFromCondensed(cm, l, false)
}

// rawMerge records a merge in slot terms, to be relabelled later.
type rawMerge struct {
	a, b   int // slots at merge time (slot a absorbs b)
	height float64
	size   int
}

// nnChainState is the entire working set of one NN-chain run,
// allocated once by newNNChainState. Each step — growing the chain by
// one nearest neighbour or collapsing a reciprocal pair into a merge —
// then runs without any heap allocation: the chain and raw-merge
// slices are preallocated to their maximum sizes (n and n−1) and the
// Lance–Williams update writes the condensed matrix in place.
type nnChainState struct {
	w         *vecmath.CondensedMatrix
	l         Linkage
	n         int
	active    []bool
	size      []int
	chain     []int
	raws      []rawMerge
	remaining int
}

func newNNChainState(w *vecmath.CondensedMatrix, l Linkage) *nnChainState {
	n := w.N()
	st := &nnChainState{
		w:         w,
		l:         l,
		n:         n,
		active:    make([]bool, n),
		size:      make([]int, n),
		chain:     make([]int, 0, n),
		raws:      make([]rawMerge, 0, n-1),
		remaining: n,
	}
	for i := range st.active {
		st.active[i] = true
		st.size[i] = 1
	}
	return st
}

// step advances the chain by one move: restart the chain from the
// first active slot if empty, then either append the chain top's
// nearest active neighbour or — when top and its predecessor are
// reciprocal nearest neighbours — merge them. Ties prefer the chain
// predecessor so reciprocal pairs terminate.
func (st *nnChainState) step() {
	if len(st.chain) == 0 {
		for s := 0; s < st.n; s++ {
			if st.active[s] {
				st.chain = append(st.chain, s)
				break
			}
		}
	}
	top := st.chain[len(st.chain)-1]
	prev := -1
	if len(st.chain) >= 2 {
		prev = st.chain[len(st.chain)-2]
	}
	nn, best := -1, math.Inf(1)
	for s := 0; s < st.n; s++ {
		if !st.active[s] || s == top {
			continue
		}
		ds := st.w.At(top, s)
		if ds < best || (ds == best && s == prev) {
			nn, best = s, ds
		}
	}
	if nn == prev && prev >= 0 {
		// Reciprocal nearest neighbours: merge prev and top.
		st.chain = st.chain[:len(st.chain)-2]
		a, b := prev, top
		st.l.mergeUpdate(st.w, st.active, st.size, a, b)
		height := best
		if st.l == Ward {
			height = math.Sqrt(best)
		}
		st.raws = append(st.raws, rawMerge{a: a, b: b, height: height, size: st.size[a] + st.size[b]})
		st.size[a] += st.size[b]
		st.active[b] = false
		st.remaining--
	} else {
		st.chain = append(st.chain, nn)
	}
}

// nnChainFromCondensed runs the chain to completion and relabels the
// discovered merges. When owned is true the input matrix becomes the
// working matrix directly; otherwise it is cloned first.
func nnChainFromCondensed(cm *vecmath.CondensedMatrix, l Linkage, owned bool) (*Dendrogram, error) {
	n := cm.N()
	d := &Dendrogram{n: n, linkage: l, merges: make([]Merge, 0, n-1)}
	if n == 1 {
		return d, nil
	}
	// Working distances between active slots, Ward on squared
	// distances as in the naive implementation.
	w := cm
	if !owned {
		w = cm.Clone()
	}
	for i := 0; i < n-1; i++ {
		row := w.RowTail(i)
		for t, v := range row {
			if v < 0 || math.IsNaN(v) {
				return nil, fmt.Errorf("cluster: invalid distance %v at (%d,%d)", v, i, i+1+t)
			}
			if l == Ward {
				row[t] = v * v
			}
		}
	}
	st := newNNChainState(w, l)
	for st.remaining > 1 {
		st.step()
	}
	raws := st.raws

	// Relabel: sort merges by height (stable to keep discovery order
	// among ties), then assign scipy-style ids by replaying.
	order := make([]int, len(raws))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(x, y int) bool { return raws[order[x]].height < raws[order[y]].height })

	// Replay the sorted merges assigning scipy-style ids. Every slot
	// began life as its leaf, so leaf r.a was on side a and leaf r.b
	// on side b at merge time; idOf tracks which current cluster id
	// holds each leaf. Reducibility guarantees the sorted order is a
	// valid bottom-up construction, so at replay time the two sides
	// are exactly two existing clusters.
	idOf := make([]int, n) // current cluster id holding each leaf
	for i := range idOf {
		idOf[i] = i
	}
	nextID := n
	for _, oi := range order {
		r := raws[oi]
		ia, ib := idOf[r.a], idOf[r.b]
		if ia == ib {
			return nil, errors.New("cluster: NN-chain relabelling failed (non-reducible input?)")
		}
		if ia > ib {
			ia, ib = ib, ia
		}
		d.merges = append(d.merges, Merge{A: ia, B: ib, Distance: r.height, Size: r.size})
		// Point every leaf of both sides at the new id. O(n) per
		// merge keeps the total at O(n²).
		for leaf := 0; leaf < n; leaf++ {
			if idOf[leaf] == ia || idOf[leaf] == ib {
				idOf[leaf] = nextID
			}
		}
		nextID++
	}
	return d, nil
}
