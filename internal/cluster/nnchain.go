package cluster

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sort"

	"hmeans/internal/vecmath"
)

// NNChainDendrogram builds the same dendrogram as FromDistanceMatrix
// using the nearest-neighbour-chain algorithm: O(n²) time instead of
// the naive O(n³). It is the default large-n path (see
// Options.Algorithm); anyone clustering thousands of program phases
// or basic-block vectors (the scale of the paper's related work)
// lands here.
//
// NN-chain is exact for the *reducible* linkages — complete, single,
// average and Ward all are: merging two clusters never brings either
// closer to a third than the nearer of the pair was. The chain may
// discover merges out of height order, so the merge list is sorted
// and cluster ids relabelled afterwards, yielding a tree identical to
// the naive algorithm's whenever the pairwise merge heights are
// distinct (with ties, an equivalent tree).
func NNChainDendrogram(points []vecmath.Vector, m vecmath.Metric, l Linkage) (*Dendrogram, error) {
	if len(points) == 0 {
		return nil, ErrNoPoints
	}
	// Build the distances directly in condensed form and hand them
	// over as the working matrix.
	return nnChainFromCondensed(vecmath.CondensedDistanceMatrix(m, points), l, true)
}

// NNChainFromDistanceMatrix is NNChainDendrogram over a precomputed
// symmetric distance matrix. Like FromDistanceMatrix it is a thin
// adapter: the dense matrix is condensed once and the chain runs
// natively on the condensed layout.
func NNChainFromDistanceMatrix(dm *vecmath.Matrix, l Linkage) (*Dendrogram, error) {
	cm, err := condenseChecked(dm)
	if err != nil {
		return nil, err
	}
	return nnChainFromCondensed(cm, l, true)
}

// NNChainFromCondensed is NNChainDendrogram over a precomputed
// condensed distance matrix. The input is not modified.
func NNChainFromCondensed(cm *vecmath.CondensedMatrix, l Linkage) (*Dendrogram, error) {
	return nnChainFromCondensed(cm, l, false)
}

// NNChainFromCondensed32 runs the chain natively on float32 condensed
// storage — the opt-in half-memory mode for very large n, where the
// float64 triangle alone would be ~40 GB at n=100k. Distances stay
// float32 in memory; every Lance–Williams update widens its operands
// to float64, applies the exact recurrence, and rounds once on store,
// and merge heights are reported as the widened float32 values. The
// resulting tree matches the float64 tree wherever the ~2⁻²⁴-relative
// storage rounding does not reorder two merge heights.
//
// Unlike NNChainFromCondensed, the input matrix is CONSUMED as the
// in-place working matrix — cloning would forfeit exactly the memory
// the float32 mode exists to save. Callers must not reuse cm.
func NNChainFromCondensed32(cm *vecmath.Condensed32, l Linkage) (*Dendrogram, error) {
	return NNChainFromCondensed32Ctx(context.Background(), cm, l)
}

// NNChainFromCondensed32Ctx is NNChainFromCondensed32 with
// cooperative cancellation between chain steps.
func NNChainFromCondensed32Ctx(ctx context.Context, cm *vecmath.Condensed32, l Linkage) (*Dendrogram, error) {
	n := cm.N()
	d := &Dendrogram{n: n, linkage: l, merges: make([]Merge, 0, n-1)}
	if n == 1 {
		return d, nil
	}
	if err := validateSquareRows(cm, l); err != nil {
		return nil, err
	}
	if err := nnChainAgglomerate(ctx, cm, l, d, nil); err != nil {
		return nil, err
	}
	return d, nil
}

// validateSquareRows is the serial validation (and, for Ward,
// squaring) pass over a working matrix: distances must be
// non-negative and not NaN. The float32 square rounds exactly like
// rounding the float64 product would — a product of two float32
// values is exact in float64 — so the two instantiations agree.
func validateSquareRows[F vecmath.Float](w *vecmath.Condensed[F], l Linkage) error {
	n := w.N()
	for i := 0; i < n-1; i++ {
		row := w.RowTail(i)
		for t, v := range row {
			if v < 0 || math.IsNaN(float64(v)) {
				return fmt.Errorf("cluster: invalid distance %v at (%d,%d)", v, i, i+1+t)
			}
			if l == Ward {
				row[t] = v * v
			}
		}
	}
	return nil
}

// rawMerge records a merge in slot terms, to be relabelled later.
type rawMerge struct {
	a, b   int // slots at merge time (slot a absorbs b)
	height float64
	size   int
}

// nnChainState is the entire working set of one NN-chain run,
// allocated once by newNNChainState. Each step — growing the chain by
// one nearest neighbour or collapsing a reciprocal pair into a merge —
// then runs without any heap allocation: the chain and raw-merge
// slices are preallocated to their maximum sizes (n and n−1) and the
// Lance–Williams update writes the condensed matrix in place.
type nnChainState[F vecmath.Float] struct {
	w         *vecmath.Condensed[F]
	l         Linkage
	n         int
	active    []bool
	size      []int
	chain     []int
	raws      []rawMerge
	remaining int
	// first is the chain-restart cursor. Restarts want the lowest
	// active slot; slots only ever deactivate, so that slot's index is
	// non-decreasing over the run and the cursor never rescans the
	// dead prefix — O(n) total instead of O(n) per restart.
	first int
}

func newNNChainState[F vecmath.Float](w *vecmath.Condensed[F], l Linkage) *nnChainState[F] {
	n := w.N()
	st := &nnChainState[F]{
		w:         w,
		l:         l,
		n:         n,
		active:    make([]bool, n),
		size:      make([]int, n),
		chain:     make([]int, 0, n),
		raws:      make([]rawMerge, 0, n-1),
		remaining: n,
	}
	for i := range st.active {
		st.active[i] = true
		st.size[i] = 1
	}
	return st
}

// step advances the chain by one move: restart the chain from the
// first active slot if empty, then either append the chain top's
// nearest active neighbour or — when top and its predecessor are
// reciprocal nearest neighbours — merge them. Ties prefer the chain
// predecessor so reciprocal pairs terminate.
//
// The nearest-neighbour scan visits slots in ascending order exactly
// like the historical At-per-slot loop, but addresses the condensed
// triangle incrementally: pairs (s, top) with s < top walk down
// column top (stride n−s−2 per step), pairs with s > top run along
// top's contiguous row tail. Same comparisons in the same order —
// only the addressing changed.
func (st *nnChainState[F]) step() {
	if len(st.chain) == 0 {
		for !st.active[st.first] {
			st.first++
		}
		st.chain = append(st.chain, st.first)
	}
	top := st.chain[len(st.chain)-1]
	prev := -1
	if len(st.chain) >= 2 {
		prev = st.chain[len(st.chain)-2]
	}
	data := st.w.Data()
	n := st.n
	nn := -1
	best := F(math.Inf(1))
	idx := top - 1 // idx(0, top)
	for s := 0; s < top; s++ {
		if st.active[s] {
			if ds := data[idx]; ds < best || (ds == best && s == prev) {
				nn, best = s, ds
			}
		}
		idx += n - s - 2
	}
	if top < n-1 {
		base := st.w.Index0(top) - top - 1 // idx(top, s) = base + s
		for s := top + 1; s < n; s++ {
			if st.active[s] {
				if ds := data[base+s]; ds < best || (ds == best && s == prev) {
					nn, best = s, ds
				}
			}
		}
	}
	if nn == prev && prev >= 0 {
		// Reciprocal nearest neighbours: merge prev and top.
		st.chain = st.chain[:len(st.chain)-2]
		a, b := prev, top
		mergeUpdateCondensed(st.l, st.w, st.active, st.size, a, b)
		height := float64(best)
		if st.l == Ward {
			height = math.Sqrt(height)
		}
		st.raws = append(st.raws, rawMerge{a: a, b: b, height: height, size: st.size[a] + st.size[b]})
		st.size[a] += st.size[b]
		st.active[b] = false
		st.remaining--
	} else {
		st.chain = append(st.chain, nn)
	}
}

// nnChainCancelSteps spaces the chain's cooperative cancellation
// checks: one context poll per this many chain moves keeps the poll
// overhead invisible while still reacting within a bounded slice of
// the O(n) work one move costs.
const nnChainCancelSteps = 256

// nnChainAgglomerate runs the chain to completion over a validated
// (and, for Ward, squared) working matrix, then relabels the
// discovered merges into d. progress, when non-nil, receives
// (mergesDone, totalMerges) at a coarse cadence.
func nnChainAgglomerate[F vecmath.Float](ctx context.Context, w *vecmath.Condensed[F], l Linkage, d *Dendrogram, progress func(done, total int)) error {
	n := w.N()
	st := newNNChainState(w, l)
	progEvery := progressStride(n - 1)
	steps, reported := 0, 0
	for st.remaining > 1 {
		if steps%nnChainCancelSteps == 0 && ctx != nil {
			if err := ctx.Err(); err != nil {
				return fmt.Errorf("cluster: NN-chain cancelled after %d of %d merges: %w", len(st.raws), n-1, err)
			}
		}
		st.step()
		steps++
		if progress != nil && len(st.raws)-reported >= progEvery {
			reported = len(st.raws)
			progress(reported, n-1)
		}
	}
	return relabelMerges(st.raws, n, d)
}

// relabelMerges sorts the chain's slot-level merges by height (stable,
// preserving discovery order among ties) and replays them assigning
// scipy-style cluster ids. Reducibility guarantees the sorted order is
// a valid bottom-up construction, so at replay time the two sides of
// every merge are exactly two existing clusters. A union-find over the
// leaves (path-halving; near-linear total) tracks which current
// cluster id holds each leaf — every slot began life as its leaf, so
// slot a at merge time identifies the cluster holding leaf a.
func relabelMerges(raws []rawMerge, n int, d *Dendrogram) error {
	order := make([]int, len(raws))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(x, y int) bool { return raws[order[x]].height < raws[order[y]].height })

	parent := make([]int, n)
	clusterID := make([]int, n) // current cluster id at each set root
	for i := range parent {
		parent[i] = i
		clusterID[i] = i
	}
	find := func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	nextID := n
	for _, oi := range order {
		r := raws[oi]
		ra, rb := find(r.a), find(r.b)
		if ra == rb {
			return errors.New("cluster: NN-chain relabelling failed (non-reducible input?)")
		}
		ia, ib := clusterID[ra], clusterID[rb]
		if ia > ib {
			ia, ib = ib, ia
		}
		d.merges = append(d.merges, Merge{A: ia, B: ib, Distance: r.height, Size: r.size})
		parent[rb] = ra
		clusterID[ra] = nextID
		nextID++
	}
	return nil
}

// nnChainFromCondensed validates the input and runs the chain. When
// owned is true the input matrix becomes the working matrix directly;
// otherwise it is cloned first.
func nnChainFromCondensed(cm *vecmath.CondensedMatrix, l Linkage, owned bool) (*Dendrogram, error) {
	n := cm.N()
	d := &Dendrogram{n: n, linkage: l, merges: make([]Merge, 0, n-1)}
	if n == 1 {
		return d, nil
	}
	// Working distances between active slots, Ward on squared
	// distances as in the naive implementation.
	w := cm
	if !owned {
		w = cm.Clone()
	}
	if err := validateSquareRows(w, l); err != nil {
		return nil, err
	}
	if err := nnChainAgglomerate(context.Background(), w, l, d, nil); err != nil {
		return nil, err
	}
	return d, nil
}
