package cluster

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"hmeans/internal/vecmath"
)

// NNChainDendrogram builds the same dendrogram as FromDistanceMatrix
// using the nearest-neighbour-chain algorithm: O(n²) time instead of
// the naive O(n³). Benchmark suites never need this, but anyone
// clustering thousands of program phases or basic-block vectors (the
// scale of the paper's related work) does.
//
// NN-chain is exact for the *reducible* linkages — complete, single,
// average and Ward all are: merging two clusters never brings either
// closer to a third than the nearer of the pair was. The chain may
// discover merges out of height order, so the merge list is sorted
// and cluster ids relabelled afterwards, yielding a tree identical to
// the naive algorithm's whenever the pairwise merge heights are
// distinct (with ties, an equivalent tree).
func NNChainDendrogram(points []vecmath.Vector, m vecmath.Metric, l Linkage) (*Dendrogram, error) {
	if len(points) == 0 {
		return nil, ErrNoPoints
	}
	return NNChainFromDistanceMatrix(vecmath.DistanceMatrix(m, points), l)
}

// NNChainFromDistanceMatrix is NNChainDendrogram over a precomputed
// symmetric distance matrix.
func NNChainFromDistanceMatrix(dm *vecmath.Matrix, l Linkage) (*Dendrogram, error) {
	n := dm.Rows()
	if n == 0 || dm.Cols() != n {
		return nil, fmt.Errorf("cluster: distance matrix must be square and non-empty, got %dx%d", dm.Rows(), dm.Cols())
	}
	if !dm.IsSymmetric(1e-9) {
		return nil, errors.New("cluster: distance matrix is not symmetric")
	}
	d := &Dendrogram{n: n, linkage: l, merges: make([]Merge, 0, n-1)}
	if n == 1 {
		return d, nil
	}
	// Working distances between active slots, Ward on squared
	// distances as in the naive implementation.
	dist := make([][]float64, n)
	for i := range dist {
		dist[i] = make([]float64, n)
		for j := 0; j < n; j++ {
			v := dm.At(i, j)
			if v < 0 || math.IsNaN(v) {
				return nil, fmt.Errorf("cluster: invalid distance %v at (%d,%d)", v, i, j)
			}
			if l == Ward {
				v *= v
			}
			dist[i][j] = v
		}
	}
	active := make([]bool, n)
	size := make([]int, n)
	for i := range active {
		active[i] = true
		size[i] = 1
	}

	// rawMerge records a merge in slot terms, to be relabelled later.
	type rawMerge struct {
		a, b   int // slots at merge time (slot a absorbs b)
		height float64
		size   int
	}
	raws := make([]rawMerge, 0, n-1)
	chain := make([]int, 0, n)
	remaining := n
	for remaining > 1 {
		if len(chain) == 0 {
			for s := 0; s < n; s++ {
				if active[s] {
					chain = append(chain, s)
					break
				}
			}
		}
		top := chain[len(chain)-1]
		// Nearest active neighbour of top; prefer the chain
		// predecessor on ties so reciprocal pairs terminate.
		nn, best := -1, math.Inf(1)
		var prev = -1
		if len(chain) >= 2 {
			prev = chain[len(chain)-2]
		}
		for s := 0; s < n; s++ {
			if !active[s] || s == top {
				continue
			}
			ds := dist[top][s]
			if ds < best || (ds == best && s == prev) {
				nn, best = s, ds
			}
		}
		if nn == prev && prev >= 0 {
			// Reciprocal nearest neighbours: merge prev and top.
			chain = chain[:len(chain)-2]
			a, b := prev, top
			for k := 0; k < n; k++ {
				if !active[k] || k == a || k == b {
					continue
				}
				nd := l.update(dist[a][k], dist[b][k], dist[a][b], size[a], size[b], size[k])
				dist[a][k] = nd
				dist[k][a] = nd
			}
			height := best
			if l == Ward {
				height = math.Sqrt(best)
			}
			raws = append(raws, rawMerge{a: a, b: b, height: height, size: size[a] + size[b]})
			size[a] += size[b]
			active[b] = false
			remaining--
		} else {
			chain = append(chain, nn)
		}
	}

	// Relabel: sort merges by height (stable to keep discovery order
	// among ties), then assign scipy-style ids by replaying.
	order := make([]int, len(raws))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(x, y int) bool { return raws[order[x]].height < raws[order[y]].height })

	// Replay the sorted merges assigning scipy-style ids. Every slot
	// began life as its leaf, so leaf r.a was on side a and leaf r.b
	// on side b at merge time; idOf tracks which current cluster id
	// holds each leaf. Reducibility guarantees the sorted order is a
	// valid bottom-up construction, so at replay time the two sides
	// are exactly two existing clusters.
	idOf := make([]int, n) // current cluster id holding each leaf
	for i := range idOf {
		idOf[i] = i
	}
	nextID := n
	for _, oi := range order {
		r := raws[oi]
		ia, ib := idOf[r.a], idOf[r.b]
		if ia == ib {
			return nil, errors.New("cluster: NN-chain relabelling failed (non-reducible input?)")
		}
		if ia > ib {
			ia, ib = ib, ia
		}
		d.merges = append(d.merges, Merge{A: ia, B: ib, Distance: r.height, Size: r.size})
		// Point every leaf of both sides at the new id. O(n) per
		// merge keeps the total at O(n²).
		for leaf := 0; leaf < n; leaf++ {
			if idOf[leaf] == ia || idOf[leaf] == ib {
				idOf[leaf] = nextID
			}
		}
		nextID++
	}
	return d, nil
}
