package cluster

import (
	"math"
	"testing"

	"hmeans/internal/vecmath"
)

func threeBlobs() []vecmath.Vector {
	return []vecmath.Vector{
		{0, 0}, {0.2, 0.1}, {0.1, 0.3},
		{10, 0}, {10.3, 0.2},
		{5, 9}, {5.2, 9.1}, {4.8, 8.9},
	}
}

func TestDaviesBouldinPrefersTrueK(t *testing.T) {
	pts := threeBlobs()
	d, err := NewDendrogram(pts, vecmath.Euclidean, Complete)
	if err != nil {
		t.Fatal(err)
	}
	var db3, db2 float64
	a3, _ := d.CutK(3)
	if db3, err = DaviesBouldin(pts, a3); err != nil {
		t.Fatal(err)
	}
	a2, _ := d.CutK(2)
	if db2, err = DaviesBouldin(pts, a2); err != nil {
		t.Fatal(err)
	}
	if db3 >= db2 {
		t.Fatalf("DB(3)=%v should beat DB(2)=%v on three blobs", db3, db2)
	}
}

func TestDaviesBouldinErrors(t *testing.T) {
	pts := threeBlobs()
	if _, err := DaviesBouldin(pts, Assignment{Labels: []int{0}, K: 1}); err == nil {
		t.Error("length mismatch accepted")
	}
	one := Assignment{Labels: make([]int, len(pts)), K: 1}
	if _, err := DaviesBouldin(pts, one); err == nil {
		t.Error("K=1 accepted")
	}
}

func TestDaviesBouldinCoincidentCentroids(t *testing.T) {
	// Two clusters with identical centroids → infinite index.
	pts := []vecmath.Vector{{0, 0}, {2, 2}, {1, 1}, {1.0001, 1.0001}}
	a := Assignment{Labels: []int{0, 0, 1, 1}, K: 2}
	// Centroid of cluster 0 = (1,1), cluster 1 ≈ (1,1): near-zero
	// separation should blow the index up.
	db, err := DaviesBouldin(pts, a)
	if err != nil {
		t.Fatal(err)
	}
	if db < 100 {
		t.Fatalf("DB = %v, want very large for coincident centroids", db)
	}
}

func TestQualitySweepAndRecommendK(t *testing.T) {
	pts := threeBlobs()
	d, err := NewDendrogram(pts, vecmath.Euclidean, Complete)
	if err != nil {
		t.Fatal(err)
	}
	sweep, err := d.QualitySweep(pts, 2, 6)
	if err != nil {
		t.Fatal(err)
	}
	if len(sweep) != 5 {
		t.Fatalf("sweep length %d, want 5", len(sweep))
	}
	k, err := RecommendK(sweep)
	if err != nil {
		t.Fatal(err)
	}
	if k != 3 {
		t.Fatalf("RecommendK = %d, want 3 (true blob count)", k)
	}
	// Merge-gap sanity: the gap at the true k must be positive.
	for _, q := range sweep {
		if q.K == 3 && q.MergeGap <= 0 {
			t.Fatalf("merge gap at true k = %v", q.MergeGap)
		}
		if q.Silhouette < -1 || q.Silhouette > 1 {
			t.Fatalf("silhouette out of range: %v", q.Silhouette)
		}
		if q.DaviesBouldin < 0 && !math.IsInf(q.DaviesBouldin, 1) {
			t.Fatalf("negative DB: %v", q.DaviesBouldin)
		}
	}
}

func TestQualitySweepErrors(t *testing.T) {
	pts := threeBlobs()
	d, _ := NewDendrogram(pts, vecmath.Euclidean, Complete)
	if _, err := d.QualitySweep(pts[:3], 2, 4); err == nil {
		t.Error("mismatched points accepted")
	}
	if _, err := d.QualitySweep(pts, 9, 12); err == nil {
		t.Error("out-of-range sweep accepted")
	}
}

func TestRecommendKEmpty(t *testing.T) {
	if _, err := RecommendK(nil); err == nil {
		t.Error("empty sweep accepted")
	}
}
