package cluster

import (
	"errors"

	"hmeans/internal/stat"
	"hmeans/internal/vecmath"
)

// Silhouette returns the mean silhouette coefficient of an assignment
// over the given distance matrix: for each point, (b−a)/max(a,b)
// where a is the mean distance to its own cluster and b the smallest
// mean distance to another cluster. Values near 1 indicate tight,
// well-separated clusters; singleton clusters contribute 0 (the
// standard convention). It requires 2 <= k <= n−1 to be meaningful
// and returns an error otherwise.
func Silhouette(dm *vecmath.Matrix, a Assignment) (float64, error) {
	n := dm.Rows()
	if len(a.Labels) != n {
		return 0, errors.New("cluster: assignment length does not match distance matrix")
	}
	if a.K < 2 {
		return 0, &CutError{K: a.K, N: n, Reason: "silhouette needs at least 2 clusters"}
	}
	sizes := a.Sizes()
	total := 0.0
	for i := 0; i < n; i++ {
		li := a.Labels[i]
		if sizes[li] == 1 {
			continue // contributes 0
		}
		// Mean distance to every cluster.
		sums := make([]float64, a.K)
		for j := 0; j < n; j++ {
			if j != i {
				sums[a.Labels[j]] += dm.At(i, j)
			}
		}
		own := sums[li] / float64(sizes[li]-1)
		best := -1.0
		for c := 0; c < a.K; c++ {
			if c == li || sizes[c] == 0 {
				continue
			}
			m := sums[c] / float64(sizes[c])
			if best < 0 || m < best {
				best = m
			}
		}
		if best < 0 {
			continue
		}
		den := own
		if best > den {
			den = best
		}
		if den > 0 {
			total += (best - own) / den
		}
	}
	return total / float64(n), nil
}

// CopheneticDistances returns the n(n−1)/2 cophenetic distances of
// the dendrogram — for each pair of leaves, the merge height at which
// they first share a cluster — in the row-major upper-triangle order
// (0,1), (0,2), …, (1,2), ….
func (d *Dendrogram) CopheneticDistances() []float64 {
	// membership tracks, per cluster id, its leaves. Building the
	// list incrementally over merges is O(n²) total, fine at suite
	// scale.
	leaves := make(map[int][]int, 2*d.n)
	for i := 0; i < d.n; i++ {
		leaves[i] = []int{i}
	}
	coph := vecmath.NewMatrix(maxIntc(d.n, 1), maxIntc(d.n, 1))
	for s, m := range d.merges {
		la, lb := leaves[m.A], leaves[m.B]
		for _, x := range la {
			for _, y := range lb {
				coph.Set(x, y, m.Distance)
				coph.Set(y, x, m.Distance)
			}
		}
		merged := append(append([]int{}, la...), lb...)
		leaves[d.n+s] = merged
		delete(leaves, m.A)
		delete(leaves, m.B)
	}
	out := make([]float64, 0, d.n*(d.n-1)/2)
	for i := 0; i < d.n; i++ {
		for j := i + 1; j < d.n; j++ {
			out = append(out, coph.At(i, j))
		}
	}
	return out
}

// CopheneticCorrelation returns the Pearson correlation between the
// original pairwise distances and the dendrogram's cophenetic
// distances — the standard measure of how faithfully a hierarchical
// clustering preserves the input geometry.
func (d *Dendrogram) CopheneticCorrelation(dm *vecmath.Matrix) (float64, error) {
	if dm.Rows() != d.n {
		return 0, errors.New("cluster: distance matrix does not match dendrogram")
	}
	orig := make([]float64, 0, d.n*(d.n-1)/2)
	for i := 0; i < d.n; i++ {
		for j := i + 1; j < d.n; j++ {
			orig = append(orig, dm.At(i, j))
		}
	}
	return stat.Pearson(orig, d.CopheneticDistances())
}

func maxIntc(a, b int) int {
	if a > b {
		return a
	}
	return b
}
