package cluster

import (
	"testing"
	"testing/quick"

	"hmeans/internal/vecmath"
)

func TestSilhouetteWellSeparated(t *testing.T) {
	pts := []vecmath.Vector{{0}, {0.5}, {10}, {10.5}}
	dm := vecmath.DistanceMatrix(vecmath.Euclidean, pts)
	d, _ := FromDistanceMatrix(dm, Complete)
	a, _ := d.CutK(2)
	s, err := Silhouette(dm, a)
	if err != nil {
		t.Fatal(err)
	}
	if s < 0.9 {
		t.Fatalf("silhouette of well-separated pairs = %v, want > 0.9", s)
	}
}

func TestSilhouetteBadSplitLower(t *testing.T) {
	pts := []vecmath.Vector{{0}, {0.5}, {10}, {10.5}}
	dm := vecmath.DistanceMatrix(vecmath.Euclidean, pts)
	good := Assignment{Labels: []int{0, 0, 1, 1}, K: 2}
	bad := Assignment{Labels: []int{0, 1, 0, 1}, K: 2}
	sg, err := Silhouette(dm, good)
	if err != nil {
		t.Fatal(err)
	}
	sb, err := Silhouette(dm, bad)
	if err != nil {
		t.Fatal(err)
	}
	if sb >= sg {
		t.Fatalf("bad split silhouette %v >= good split %v", sb, sg)
	}
}

func TestSilhouetteErrors(t *testing.T) {
	pts := []vecmath.Vector{{0}, {1}}
	dm := vecmath.DistanceMatrix(vecmath.Euclidean, pts)
	if _, err := Silhouette(dm, Assignment{Labels: []int{0, 0}, K: 1}); err == nil {
		t.Error("K=1 accepted")
	}
	if _, err := Silhouette(dm, Assignment{Labels: []int{0}, K: 2}); err == nil {
		t.Error("length mismatch accepted")
	}
}

func TestSilhouetteSingletonsContributeZero(t *testing.T) {
	pts := []vecmath.Vector{{0}, {1}, {2}}
	dm := vecmath.DistanceMatrix(vecmath.Euclidean, pts)
	a := Assignment{Labels: []int{0, 1, 2}, K: 3}
	s, err := Silhouette(dm, a)
	if err != nil {
		t.Fatal(err)
	}
	if s != 0 {
		t.Fatalf("all-singleton silhouette = %v, want 0", s)
	}
}

func TestCopheneticDistances(t *testing.T) {
	pts := []vecmath.Vector{{0}, {1}, {10}, {12}}
	d, _ := NewDendrogram(pts, vecmath.Euclidean, Complete)
	coph := d.CopheneticDistances()
	// Pairs in order: (0,1)=1, (0,2)=12, (0,3)=12, (1,2)=12, (1,3)=12, (2,3)=2.
	want := []float64{1, 12, 12, 12, 12, 2}
	if len(coph) != len(want) {
		t.Fatalf("got %d cophenetic distances, want %d", len(coph), len(want))
	}
	for i := range want {
		if coph[i] != want[i] {
			t.Fatalf("cophenetic = %v, want %v", coph, want)
		}
	}
}

func TestCopheneticCorrelation(t *testing.T) {
	pts := []vecmath.Vector{{0}, {1}, {10}, {12}, {30}}
	dm := vecmath.DistanceMatrix(vecmath.Euclidean, pts)
	d, _ := FromDistanceMatrix(dm, Average)
	c, err := d.CopheneticCorrelation(dm)
	if err != nil {
		t.Fatal(err)
	}
	if c < 0.9 || c > 1 {
		t.Fatalf("cophenetic correlation = %v, want high for clean hierarchy", c)
	}
	small := vecmath.DistanceMatrix(vecmath.Euclidean, pts[:3])
	if _, err := d.CopheneticCorrelation(small); err == nil {
		t.Error("mismatched matrix accepted")
	}
}

// Property: cophenetic distance is at least the single-linkage
// distance between any pair (first-joined height upper-bounds path
// nearness) — concretely, coph >= original distance for single
// linkage is NOT generally true, but coph must be one of the merge
// heights and non-negative. Check structural invariants instead.
func TestCopheneticStructural(t *testing.T) {
	f := func(seed uint64) bool {
		pts := randomPoints(int(seed%8)+3, 2, seed)
		d, err := NewDendrogram(pts, vecmath.Euclidean, Complete)
		if err != nil {
			return false
		}
		heights := map[float64]bool{}
		for _, m := range d.Merges() {
			heights[m.Distance] = true
		}
		for _, c := range d.CopheneticDistances() {
			if c < 0 || !heights[c] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
