package cluster

import (
	"errors"
	"fmt"
	"math"
	"sync/atomic"

	"hmeans/internal/par"
	"hmeans/internal/rng"
	"hmeans/internal/vecmath"
)

// KMeansResult is a flat clustering produced by Lloyd's algorithm.
type KMeansResult struct {
	// Assignment labels each point, canonicalized like dendrogram
	// cuts (cluster 0 contains the lowest point index).
	Assignment Assignment
	// Centroids holds the final cluster centres, indexed by label.
	Centroids []vecmath.Vector
	// Inertia is the total within-cluster sum of squared distances.
	Inertia float64
	// Iterations is how many Lloyd iterations ran before
	// convergence.
	Iterations int
}

// KMeans clusters points into k clusters with Lloyd's algorithm and
// k-means++ seeding. It is the flat-clustering baseline the
// benchmark-subsetting literature the paper cites ([10], [11]) builds
// on, provided for comparison against the dendrogram cuts.
//
// The seed makes the (stochastic) initialization reproducible. The
// algorithm restarts from scratch up to `restarts` times (minimum 1)
// and keeps the lowest-inertia result.
func KMeans(points []vecmath.Vector, k int, seed uint64, restarts int) (KMeansResult, error) {
	return KMeansP(points, k, seed, restarts, 1)
}

// KMeansP is KMeans with the per-iteration assignment step (each
// point's nearest-centroid search) sharded across `workers`
// goroutines. Assignments are independent point-local decisions over
// frozen centroids and the centroid/inertia recomputation stays
// serial, so the result is bit-identical to KMeans for any worker
// count.
func KMeansP(points []vecmath.Vector, k int, seed uint64, restarts, workers int) (KMeansResult, error) {
	if len(points) == 0 {
		return KMeansResult{}, ErrNoPoints
	}
	if k < 1 || k > len(points) {
		return KMeansResult{}, fmt.Errorf("cluster: cannot k-means %d points into %d clusters", len(points), k)
	}
	dim := len(points[0])
	for i, p := range points {
		if len(p) != dim {
			return KMeansResult{}, fmt.Errorf("cluster: point %d has dim %d, want %d", i, len(p), dim)
		}
	}
	if restarts < 1 {
		restarts = 1
	}
	r := rng.New(seed)
	best := KMeansResult{Inertia: math.Inf(1)}
	for attempt := 0; attempt < restarts; attempt++ {
		res := kmeansOnce(points, k, r, workers)
		if res.Inertia < best.Inertia {
			best = res
		}
	}
	best.Assignment = canonicalize(best.Assignment)
	return best, nil
}

func kmeansOnce(points []vecmath.Vector, k int, r *rng.Source, workers int) KMeansResult {
	centroids := seedPlusPlus(points, k, r)
	labels := make([]int, len(points))
	dim := len(points[0])
	// The centroid-update accumulators are allocated once (the sum
	// vectors as views into one flat arena) and zeroed per iteration,
	// so a Lloyd iteration allocates nothing. The assignment-step
	// closure is likewise bound once and reused.
	counts := make([]int, k)
	sums := make([]vecmath.Vector, k)
	sumFlat := make([]float64, k*dim)
	for c := range sums {
		sums[c] = vecmath.Vector(sumFlat[c*dim : (c+1)*dim : (c+1)*dim])
	}
	var changed atomic.Bool
	assign := func(start, end int) {
		for i := start; i < end; i++ {
			p := points[i]
			bestLabel, bestDist := 0, math.Inf(1)
			for c, ct := range centroids {
				if d := vecmath.SquaredEuclidean(p, ct); d < bestDist {
					bestLabel, bestDist = c, d
				}
			}
			if labels[i] != bestLabel {
				labels[i] = bestLabel
				changed.Store(true)
			}
		}
	}
	const maxIter = 200
	var iter int
	for iter = 0; iter < maxIter; iter++ {
		changed.Store(false)
		par.For(workers, len(points), assign)
		if !changed.Load() && iter > 0 {
			break
		}
		// Recompute centroids; an emptied cluster keeps its old
		// centre (it can win points back next round).
		for c := range counts {
			counts[c] = 0
		}
		for i := range sumFlat {
			sumFlat[i] = 0
		}
		for i, p := range points {
			counts[labels[i]]++
			sums[labels[i]].AddInPlace(p)
		}
		// copy+ScaleInPlace writes c·sum[j] element-wise — the same
		// expression the allocating Scale computed — into the
		// centroid's existing storage (always a private clone from
		// seedPlusPlus, never an input point).
		for c := range centroids {
			if counts[c] > 0 {
				copy(centroids[c], sums[c])
				centroids[c].ScaleInPlace(1 / float64(counts[c]))
			}
		}
	}
	inertia := 0.0
	for i, p := range points {
		inertia += vecmath.SquaredEuclidean(p, centroids[labels[i]])
	}
	return KMeansResult{
		Assignment: Assignment{Labels: labels, K: k},
		Centroids:  centroids,
		Inertia:    inertia,
		Iterations: iter,
	}
}

// seedPlusPlus picks initial centroids with the k-means++ rule:
// first uniformly, then proportional to squared distance from the
// nearest chosen centre.
func seedPlusPlus(points []vecmath.Vector, k int, r *rng.Source) []vecmath.Vector {
	centroids := make([]vecmath.Vector, 0, k)
	centroids = append(centroids, points[r.Intn(len(points))].Clone())
	d2 := make([]float64, len(points))
	for len(centroids) < k {
		total := 0.0
		for i, p := range points {
			best := math.Inf(1)
			for _, c := range centroids {
				if d := vecmath.SquaredEuclidean(p, c); d < best {
					best = d
				}
			}
			d2[i] = best
			total += best
		}
		if total == 0 {
			// All remaining points coincide with centres; fill with
			// duplicates.
			centroids = append(centroids, points[r.Intn(len(points))].Clone())
			continue
		}
		target := r.Float64() * total
		acc := 0.0
		pick := len(points) - 1
		for i, d := range d2 {
			acc += d
			if acc >= target {
				pick = i
				break
			}
		}
		centroids = append(centroids, points[pick].Clone())
	}
	return centroids
}

// canonicalize relabels an assignment so cluster ids follow first
// appearance order, dropping empty clusters.
func canonicalize(a Assignment) Assignment {
	remap := map[int]int{}
	labels := make([]int, len(a.Labels))
	next := 0
	for i, l := range a.Labels {
		nl, ok := remap[l]
		if !ok {
			nl = next
			remap[l] = nl
			next++
		}
		labels[i] = nl
	}
	return Assignment{Labels: labels, K: next}
}

// AgreementRate returns the fraction of point pairs on which two
// assignments agree (same-cluster vs different-cluster) — the Rand
// index. It errors when the assignments have different lengths.
func AgreementRate(a, b Assignment) (float64, error) {
	n := len(a.Labels)
	if n != len(b.Labels) {
		return 0, errors.New("cluster: assignments have different lengths")
	}
	if n < 2 {
		return 1, nil
	}
	agree, pairs := 0, 0
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			sameA := a.Labels[i] == a.Labels[j]
			sameB := b.Labels[i] == b.Labels[j]
			if sameA == sameB {
				agree++
			}
			pairs++
		}
	}
	return float64(agree) / float64(pairs), nil
}
