package cluster

import (
	"math"
	"testing"
	"testing/quick"

	"hmeans/internal/vecmath"
)

func blobs2(t *testing.T) []vecmath.Vector {
	t.Helper()
	return []vecmath.Vector{
		{0, 0}, {0.3, 0.1}, {0.1, 0.4},
		{10, 10}, {10.2, 9.8}, {9.9, 10.3},
	}
}

func TestKMeansSeparatesBlobs(t *testing.T) {
	pts := blobs2(t)
	res, err := KMeans(pts, 2, 1, 3)
	if err != nil {
		t.Fatal(err)
	}
	want := []int{0, 0, 0, 1, 1, 1}
	for i, w := range want {
		if res.Assignment.Labels[i] != w {
			t.Fatalf("labels = %v, want %v", res.Assignment.Labels, want)
		}
	}
	if res.Assignment.K != 2 || len(res.Centroids) != 2 {
		t.Fatalf("K=%d centroids=%d", res.Assignment.K, len(res.Centroids))
	}
	// Centroid of the first blob ≈ (0.13, 0.17).
	c0 := res.Centroids[res.Assignment.Labels[0]]
	if math.Abs(c0[0]-0.1333) > 0.01 {
		t.Fatalf("centroid = %v", c0)
	}
}

func TestKMeansErrors(t *testing.T) {
	if _, err := KMeans(nil, 2, 1, 1); err == nil {
		t.Error("empty points accepted")
	}
	pts := blobs2(t)
	if _, err := KMeans(pts, 0, 1, 1); err == nil {
		t.Error("k=0 accepted")
	}
	if _, err := KMeans(pts, 7, 1, 1); err == nil {
		t.Error("k>n accepted")
	}
	if _, err := KMeans([]vecmath.Vector{{1}, {1, 2}}, 1, 1, 1); err == nil {
		t.Error("ragged points accepted")
	}
}

func TestKMeansDeterministicPerSeed(t *testing.T) {
	pts := blobs2(t)
	a, err := KMeans(pts, 2, 42, 2)
	if err != nil {
		t.Fatal(err)
	}
	b, err := KMeans(pts, 2, 42, 2)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Assignment.Labels {
		if a.Assignment.Labels[i] != b.Assignment.Labels[i] {
			t.Fatal("k-means not deterministic per seed")
		}
	}
}

func TestKMeansKEqualsN(t *testing.T) {
	pts := blobs2(t)
	res, err := KMeans(pts, len(pts), 7, 3)
	if err != nil {
		t.Fatal(err)
	}
	if res.Inertia > 1e-12 {
		t.Fatalf("k=n inertia = %v, want ~0", res.Inertia)
	}
}

// Property: inertia never increases with k (given enough restarts on
// small instances).
func TestKMeansInertiaMonotoneInK(t *testing.T) {
	pts := blobs2(t)
	prev := math.Inf(1)
	for k := 1; k <= len(pts); k++ {
		res, err := KMeans(pts, k, 3, 8)
		if err != nil {
			t.Fatal(err)
		}
		if res.Inertia > prev+1e-9 {
			t.Fatalf("inertia rose from %v to %v at k=%d", prev, res.Inertia, k)
		}
		prev = res.Inertia
	}
}

// Property: every k-means assignment is canonical and complete.
func TestKMeansAssignmentValid(t *testing.T) {
	f := func(seed uint64, kRaw uint8) bool {
		pts := randomPoints(int(seed%10)+3, 2, seed^0x77)
		k := int(kRaw)%len(pts) + 1
		res, err := KMeans(pts, k, seed, 2)
		if err != nil {
			return false
		}
		if len(res.Assignment.Labels) != len(pts) {
			return false
		}
		seen := -1
		for _, l := range res.Assignment.Labels {
			if l < 0 || l >= res.Assignment.K {
				return false
			}
			if l > seen+1 {
				return false
			}
			if l == seen+1 {
				seen = l
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

func TestAgreementRate(t *testing.T) {
	a := Assignment{Labels: []int{0, 0, 1, 1}, K: 2}
	same := Assignment{Labels: []int{1, 1, 0, 0}, K: 2} // relabelled
	r, err := AgreementRate(a, same)
	if err != nil || r != 1 {
		t.Fatalf("relabelled agreement = %v, %v; want 1", r, err)
	}
	diff := Assignment{Labels: []int{0, 1, 0, 1}, K: 2}
	r2, err := AgreementRate(a, diff)
	if err != nil {
		t.Fatal(err)
	}
	// Pairs: (0,1)+ (2,3)+ same in a, split in diff; (0,2),(0,3),
	// (1,2),(1,3) split in a; (0,2),(1,3) same in diff. Agreement on
	// (0,1):no,(0,2):no,(0,3):yes,(1,2):yes,(1,3):no,(2,3):no = 2/6.
	if math.Abs(r2-2.0/6.0) > 1e-12 {
		t.Fatalf("agreement = %v, want 1/3", r2)
	}
	if _, err := AgreementRate(a, Assignment{Labels: []int{0}, K: 1}); err == nil {
		t.Error("length mismatch accepted")
	}
}

func TestKMeansMatchesHierarchicalOnCleanData(t *testing.T) {
	pts := blobs2(t)
	km, err := KMeans(pts, 2, 5, 4)
	if err != nil {
		t.Fatal(err)
	}
	d, err := NewDendrogram(pts, vecmath.Euclidean, Complete)
	if err != nil {
		t.Fatal(err)
	}
	hc, err := d.CutK(2)
	if err != nil {
		t.Fatal(err)
	}
	r, err := AgreementRate(km.Assignment, hc)
	if err != nil || r != 1 {
		t.Fatalf("k-means and complete linkage disagree on clean blobs: %v", r)
	}
}
