package cluster

import (
	"math"
	"reflect"
	"testing"

	"hmeans/internal/vecmath"
)

// tieHeavyPoints builds a point set with duplicated points and a
// coarse coordinate lattice, so many pairwise distances collide
// exactly and the nearest-pair tie-break is genuinely exercised.
func tieHeavyPoints(n int, seed uint64) []vecmath.Vector {
	pts := randomPoints(n, 2, seed)
	for i := range pts {
		for j := range pts[i] {
			pts[i][j] = math.Round(pts[i][j] * 2)
		}
	}
	// Duplicate a few points outright: zero distances are the
	// hardest ties.
	for i := 0; i+3 < len(pts); i += 7 {
		pts[i+3] = pts[i].Clone()
	}
	return pts
}

// TestDendrogramParallelDeterminism asserts the core guarantee of the
// parallel linkage: for every linkage, seed and worker count the
// merge sequence — ids, sizes and float64-exact heights — matches the
// serial path.
func TestDendrogramParallelDeterminism(t *testing.T) {
	for _, l := range []Linkage{Complete, Single, Average, Ward} {
		for seed := uint64(1); seed <= 5; seed++ {
			pts := tieHeavyPoints(60, seed)
			serial, err := NewDendrogram(pts, vecmath.Euclidean, l)
			if err != nil {
				t.Fatal(err)
			}
			for _, workers := range []int{1, 2, 8} {
				got, err := NewDendrogramP(pts, vecmath.Euclidean, l, workers)
				if err != nil {
					t.Fatal(err)
				}
				if !reflect.DeepEqual(serial.Merges(), got.Merges()) {
					t.Fatalf("%v seed %d workers %d: parallel merge sequence differs from serial",
						l, seed, workers)
				}
			}
		}
	}
}

// TestFromDistanceMatrixParallelValidation keeps the input validation
// of the sharded matrix build equivalent to the serial path.
func TestFromDistanceMatrixParallelValidation(t *testing.T) {
	bad := vecmath.NewMatrix(3, 3)
	bad.Set(0, 1, -1)
	bad.Set(1, 0, -1)
	for _, workers := range []int{1, 2, 8} {
		if _, err := FromDistanceMatrixP(bad, Complete, workers); err == nil {
			t.Fatalf("workers %d: negative distance accepted", workers)
		}
	}
	nan := vecmath.NewMatrix(2, 2)
	nan.Set(0, 1, math.NaN())
	nan.Set(1, 0, math.NaN())
	for _, workers := range []int{1, 2, 8} {
		if _, err := FromDistanceMatrixP(nan, Average, workers); err == nil {
			t.Fatalf("workers %d: NaN distance accepted", workers)
		}
	}
}

// TestNewDendrogramPEmpty mirrors the serial empty-input contract.
func TestNewDendrogramPEmpty(t *testing.T) {
	if _, err := NewDendrogramP(nil, vecmath.Euclidean, Complete, 4); err != ErrNoPoints {
		t.Fatalf("err = %v, want ErrNoPoints", err)
	}
}

// TestKMeansParallelDeterminism asserts KMeansP reproduces KMeans
// bit-for-bit (labels, centroids, inertia, iteration count) for every
// worker count.
func TestKMeansParallelDeterminism(t *testing.T) {
	for seed := uint64(1); seed <= 5; seed++ {
		pts := randomPoints(80, 3, seed)
		serial, err := KMeans(pts, 6, seed, 4)
		if err != nil {
			t.Fatal(err)
		}
		for _, workers := range []int{1, 2, 8} {
			got, err := KMeansP(pts, 6, seed, 4, workers)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(serial, got) {
				t.Fatalf("seed %d workers %d: KMeansP result differs from KMeans", seed, workers)
			}
		}
	}
}
