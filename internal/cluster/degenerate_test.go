package cluster

import (
	"context"
	"errors"
	"testing"
	"time"

	"hmeans/internal/vecmath"
)

// identicalPoints returns n copies of the same 2-D point — the
// all-identical-workloads degenerate input.
func identicalPoints(n int) []vecmath.Vector {
	out := make([]vecmath.Vector, n)
	for i := range out {
		out[i] = vecmath.Vector{1.5, -2.5}
	}
	return out
}

func TestCutKDegenerateRequests(t *testing.T) {
	d, err := NewDendrogram(identicalPoints(5), vecmath.Euclidean, Complete)
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct {
		name string
		k    int
		ok   bool
	}{
		{"k below range", 0, false},
		{"negative k", -3, false},
		{"k above n", 6, false},
		{"far above n", 1 << 30, false},
		{"k = 1", 1, true},
		{"k = n", 5, true},
	} {
		a, err := d.CutK(tc.k)
		if tc.ok {
			if err != nil {
				t.Errorf("%s: unexpected error %v", tc.name, err)
			} else if a.K != tc.k {
				t.Errorf("%s: got %d clusters, want %d", tc.name, a.K, tc.k)
			}
			continue
		}
		if !errors.Is(err, ErrDegenerateCut) {
			t.Errorf("%s: error %v, want ErrDegenerateCut", tc.name, err)
		}
		var ce *CutError
		if !errors.As(err, &ce) {
			t.Errorf("%s: error %T does not expose *CutError", tc.name, err)
		} else if ce.K != tc.k || ce.N != 5 {
			t.Errorf("%s: CutError carries k=%d n=%d, want k=%d n=5", tc.name, ce.K, ce.N, tc.k)
		}
	}
}

func TestSinglePointDendrogramDegenerates(t *testing.T) {
	d, err := NewDendrogram(identicalPoints(1), vecmath.Euclidean, Complete)
	if err != nil {
		t.Fatal(err)
	}
	if a, err := d.CutK(1); err != nil || a.K != 1 {
		t.Fatalf("CutK(1) on n=1: %v, %v", a, err)
	}
	if _, err := d.CutK(2); !errors.Is(err, ErrDegenerateCut) {
		t.Errorf("CutK(2) on n=1: error %v, want ErrDegenerateCut", err)
	}
	// A quality sweep needs at least two clusters, which one point
	// cannot provide: typed error, not a panic or an empty success.
	if _, err := d.QualitySweep(identicalPoints(1), 2, 8); !errors.Is(err, ErrDegenerateCut) {
		t.Errorf("QualitySweep on n=1: error %v, want ErrDegenerateCut", err)
	}
}

func TestCutsByKEmptyRangeTyped(t *testing.T) {
	d, err := NewDendrogram(identicalPoints(4), vecmath.Euclidean, Complete)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.CutsByK(5, 2); !errors.Is(err, ErrDegenerateCut) {
		t.Errorf("CutsByK(5,2): error %v, want ErrDegenerateCut", err)
	}
}

func TestAllIdenticalPointsStayFinite(t *testing.T) {
	pts := identicalPoints(6)
	d, err := NewDendrogram(pts, vecmath.Euclidean, Complete)
	if err != nil {
		t.Fatal(err)
	}
	// Every merge happens at distance 0; cuts must still be well
	// formed for every k.
	for k := 1; k <= 6; k++ {
		a, err := d.CutK(k)
		if err != nil {
			t.Fatalf("CutK(%d): %v", k, err)
		}
		if a.K != k || len(a.Labels) != 6 {
			t.Fatalf("CutK(%d): got K=%d labels=%d", k, a.K, len(a.Labels))
		}
	}
	// The quality sweep runs without panicking; its indices may be
	// degenerate values (silhouette 0, infinite Davies-Bouldin) but
	// never garbage labels.
	sweep, err := d.QualitySweep(pts, 2, 5)
	if err != nil {
		t.Fatalf("QualitySweep: %v", err)
	}
	if _, err := RecommendK(sweep); err != nil {
		t.Fatalf("RecommendK: %v", err)
	}
	if _, err := RecommendK(nil); !errors.Is(err, ErrDegenerateCut) {
		t.Errorf("RecommendK(nil): error %v, want ErrDegenerateCut", err)
	}
}

func TestSilhouetteAndDaviesBouldinDegenerate(t *testing.T) {
	pts := identicalPoints(3)
	dm := vecmath.DistanceMatrix(vecmath.Euclidean, pts)
	one := Assignment{Labels: []int{0, 0, 0}, K: 1}
	if _, err := Silhouette(dm, one); !errors.Is(err, ErrDegenerateCut) {
		t.Errorf("Silhouette with k=1: error %v, want ErrDegenerateCut", err)
	}
	if _, err := DaviesBouldin(pts, one); !errors.Is(err, ErrDegenerateCut) {
		t.Errorf("DaviesBouldin with k=1: error %v, want ErrDegenerateCut", err)
	}
}

func TestLinkageCancellation(t *testing.T) {
	pts := make([]vecmath.Vector, 300)
	for i := range pts {
		pts[i] = vecmath.Vector{float64(i), float64(i % 7)}
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := NewDendrogramOpts(pts, vecmath.Euclidean, Complete, Options{Ctx: ctx}); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled build: error %v, want context.Canceled", err)
	}

	ctx2, cancel2 := context.WithTimeout(context.Background(), time.Millisecond)
	defer cancel2()
	start := time.Now()
	_, err := NewDendrogramOpts(pts, vecmath.Euclidean, Complete, Options{Ctx: ctx2, Workers: 2})
	if err == nil {
		// Tiny inputs can legitimately finish inside the deadline on a
		// fast machine; only a hang is a failure.
		t.Skip("build finished before the deadline")
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("deadline build: error %v, want context.DeadlineExceeded", err)
	}
	if time.Since(start) > 30*time.Second {
		t.Fatal("linkage did not stop after deadline")
	}
}

// TestLinkageCtxBitIdentical proves the ctx-aware path reproduces the
// context-free merge sequence exactly when the context never fires.
func TestLinkageCtxBitIdentical(t *testing.T) {
	pts := make([]vecmath.Vector, 40)
	for i := range pts {
		pts[i] = vecmath.Vector{float64(i * i % 13), float64(i % 5)}
	}
	plain, err := NewDendrogramOpts(pts, vecmath.Euclidean, Complete, Options{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	withCtx, err := NewDendrogramOpts(pts, vecmath.Euclidean, Complete, Options{Workers: 4, Ctx: context.Background()})
	if err != nil {
		t.Fatal(err)
	}
	a, b := plain.Merges(), withCtx.Merges()
	if len(a) != len(b) {
		t.Fatalf("merge counts differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("merge %d differs: %+v vs %+v", i, a[i], b[i])
		}
	}
}
