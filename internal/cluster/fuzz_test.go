package cluster

import (
	"bytes"
	"strings"
	"testing"

	"hmeans/internal/vecmath"
)

// validDendrogramJSON serializes a real clustering so the fuzz corpus
// starts from a well-formed artifact and mutates outward.
func validDendrogramJSON(tb testing.TB) string {
	tb.Helper()
	pts := []vecmath.Vector{{0, 0}, {0, 1}, {4, 4}, {4, 5}, {9, 0}}
	d, err := NewDendrogram(pts, vecmath.Euclidean, Complete)
	if err != nil {
		tb.Fatal(err)
	}
	var buf bytes.Buffer
	if err := d.Save(&buf); err != nil {
		tb.Fatal(err)
	}
	return buf.String()
}

// FuzzLoadDendrogram asserts the dendrogram loader never panics on
// corrupted input, and that anything it accepts is structurally sound:
// cuts at every k succeed and the save/load round trip is stable.
func FuzzLoadDendrogram(f *testing.F) {
	valid := validDendrogramJSON(f)
	f.Add(valid)
	f.Add(valid[:len(valid)/2])                                                       // truncation
	f.Add(strings.Replace(valid, `"n":5`, `"n":50`, 1))                               // inconsistent leaf count
	f.Add(strings.Replace(valid, `"a":0`, `"a":-1`, 1))                               // invalid id
	f.Add(strings.ReplaceAll(valid, `"distance"`, `"dist"`))                          // dropped field
	f.Add(`{"n":1,"linkage":0,"merges":[]}`)                                          // single leaf
	f.Add(`{"n":2,"merges":[{"A":0,"B":1,"Distance":-1}]}`)                           // negative height
	f.Add(`{"n":3,"merges":[{"A":0,"B":0,"Distance":1},{"A":1,"B":2,"Distance":2}]}`) // self-merge
	f.Add(``)
	f.Add(`null`)
	f.Add(`{"n":9999999,"merges":[]}`)
	f.Fuzz(func(t *testing.T, input string) {
		d, err := LoadDendrogram(strings.NewReader(input))
		if err != nil {
			return
		}
		if d.Len() < 1 {
			t.Fatalf("accepted dendrogram with %d leaves", d.Len())
		}
		if len(d.Merges()) != d.Len()-1 {
			t.Fatalf("accepted %d merges for %d leaves", len(d.Merges()), d.Len())
		}
		// Every valid cut must work on an accepted artifact; the cap
		// keeps adversarial large-n inputs from stalling the fuzzer.
		maxK := d.Len()
		if maxK > 64 {
			maxK = 64
		}
		for k := 1; k <= maxK; k++ {
			a, err := d.CutK(k)
			if err != nil {
				t.Fatalf("CutK(%d) on accepted dendrogram: %v", k, err)
			}
			if a.K != k {
				t.Fatalf("CutK(%d) produced %d clusters", k, a.K)
			}
		}
		d.CutDistance(0)
		// Round trip: what Save emits must load back equal.
		var buf bytes.Buffer
		if err := d.Save(&buf); err != nil {
			t.Fatalf("re-save failed: %v", err)
		}
		back, err := LoadDendrogram(&buf)
		if err != nil {
			t.Fatalf("reload of saved dendrogram failed: %v", err)
		}
		if back.Len() != d.Len() || len(back.Merges()) != len(d.Merges()) {
			t.Fatal("round trip changed structure")
		}
		for i, m := range d.Merges() {
			if back.Merges()[i] != m {
				t.Fatalf("round trip changed merge %d", i)
			}
		}
	})
}
