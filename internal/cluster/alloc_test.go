package cluster

import (
	"math"
	"sync/atomic"
	"testing"

	"hmeans/internal/par"
	"hmeans/internal/rng"
	"hmeans/internal/vecmath"
)

// TestNNChainStepAllocationFree pins one NN-chain step — a chain
// extension or a reciprocal-pair merge with its in-place
// Lance–Williams update — at zero heap allocations. The state is
// preallocated for the whole run, so the measured steps stay well
// short of exhausting it.
func TestNNChainStepAllocationFree(t *testing.T) {
	pts := randomPoints(200, 3, 11)
	cm := vecmath.CondensedDistanceMatrix(vecmath.Euclidean, pts)
	st := newNNChainState(cm, Complete)
	// A full run takes at least 2(n-1) steps (every merge needs at
	// least one chain extension), so 101 measured steps cannot finish
	// the clustering.
	if avg := testing.AllocsPerRun(100, st.step); avg != 0 {
		t.Errorf("NN-chain step: %v allocs/op, want 0", avg)
	}
	if st.remaining <= 1 {
		t.Fatal("measurement exhausted the chain; enlarge the point set")
	}
}

// TestMergeUpdateAllocationFree pins the shared Lance–Williams update
// pass at zero allocations for every linkage.
func TestMergeUpdateAllocationFree(t *testing.T) {
	pts := randomPoints(64, 3, 12)
	for _, l := range []Linkage{Complete, Single, Average, Ward} {
		w := vecmath.CondensedDistanceMatrix(vecmath.Euclidean, pts)
		active := make([]bool, 64)
		size := make([]int, 64)
		for i := range active {
			active[i] = true
			size[i] = 1
		}
		if avg := testing.AllocsPerRun(100, func() {
			l.mergeUpdate(w, active, size, 3, 17)
		}); avg != 0 {
			t.Errorf("%v mergeUpdate: %v allocs/op, want 0", l, avg)
		}
	}
}

// referenceKMeansOnce is the pre-refactor Lloyd iteration, kept here
// verbatim as the oracle: per-iteration accumulator allocation and
// the allocating Scale centroid update.
func referenceKMeansOnce(points []vecmath.Vector, k int, r *rng.Source, workers int) KMeansResult {
	centroids := seedPlusPlus(points, k, r)
	labels := make([]int, len(points))
	const maxIter = 200
	var iter int
	for iter = 0; iter < maxIter; iter++ {
		var changed atomic.Bool
		par.For(workers, len(points), func(start, end int) {
			for i := start; i < end; i++ {
				p := points[i]
				bestLabel, bestDist := 0, math.Inf(1)
				for c, ct := range centroids {
					if d := vecmath.SquaredEuclidean(p, ct); d < bestDist {
						bestLabel, bestDist = c, d
					}
				}
				if labels[i] != bestLabel {
					labels[i] = bestLabel
					changed.Store(true)
				}
			}
		})
		if !changed.Load() && iter > 0 {
			break
		}
		counts := make([]int, k)
		sums := make([]vecmath.Vector, k)
		for c := range sums {
			sums[c] = vecmath.NewVector(len(points[0]))
		}
		for i, p := range points {
			counts[labels[i]]++
			sums[labels[i]].AXPYInPlace(1, p)
		}
		for c := range centroids {
			if counts[c] > 0 {
				centroids[c] = sums[c].Scale(1 / float64(counts[c]))
			}
		}
	}
	inertia := 0.0
	for i, p := range points {
		inertia += vecmath.SquaredEuclidean(p, centroids[labels[i]])
	}
	return KMeansResult{
		Assignment: Assignment{Labels: labels, K: k},
		Centroids:  centroids,
		Inertia:    inertia,
		Iterations: iter,
	}
}

// TestKMeansInPlaceCentroidsIdentical proves the in-place centroid
// update (flat accumulator arena, AddInPlace, copy+ScaleInPlace)
// reproduces the allocating implementation bit for bit: same
// centroids, labels, inertia and iteration count for every seed and
// worker count tried.
func TestKMeansInPlaceCentroidsIdentical(t *testing.T) {
	for _, n := range []int{13, 120} {
		pts := randomPoints(n, 4, uint64(n))
		for seed := uint64(1); seed <= 5; seed++ {
			for _, workers := range []int{1, 2, 8} {
				got := kmeansOnce(pts, 5, rng.New(seed), workers)
				want := referenceKMeansOnce(pts, 5, rng.New(seed), workers)
				if got.Iterations != want.Iterations {
					t.Fatalf("n=%d seed=%d workers=%d: iterations %d != %d",
						n, seed, workers, got.Iterations, want.Iterations)
				}
				if got.Inertia != want.Inertia {
					t.Fatalf("n=%d seed=%d workers=%d: inertia %v != %v",
						n, seed, workers, got.Inertia, want.Inertia)
				}
				for c := range want.Centroids {
					for j := range want.Centroids[c] {
						if got.Centroids[c][j] != want.Centroids[c][j] {
							t.Fatalf("n=%d seed=%d workers=%d: centroid %d[%d] %v != %v",
								n, seed, workers, c, j, got.Centroids[c][j], want.Centroids[c][j])
						}
					}
				}
				for i := range want.Assignment.Labels {
					if got.Assignment.Labels[i] != want.Assignment.Labels[i] {
						t.Fatalf("n=%d seed=%d workers=%d: label %d differs", n, seed, workers, i)
					}
				}
			}
		}
	}
}

// TestCondensedLinkageMatchesDense proves the condensed-native
// agglomeration and NN-chain produce merge sequences identical to the
// dense entry points for every linkage.
func TestCondensedLinkageMatchesDense(t *testing.T) {
	pts := randomPoints(60, 2, 21)
	dm := vecmath.DistanceMatrix(vecmath.Euclidean, pts)
	cm := vecmath.CondensedDistanceMatrix(vecmath.Euclidean, pts)
	for _, l := range []Linkage{Complete, Single, Average, Ward} {
		dense, err := FromDistanceMatrix(dm, l)
		if err != nil {
			t.Fatal(err)
		}
		cond, err := FromCondensed(cm, l)
		if err != nil {
			t.Fatal(err)
		}
		if len(dense.Merges()) != len(cond.Merges()) {
			t.Fatalf("%v: merge count mismatch", l)
		}
		for i, m := range dense.Merges() {
			if cond.Merges()[i] != m {
				t.Fatalf("%v: merge %d: dense %+v != condensed %+v", l, i, m, cond.Merges()[i])
			}
		}
		dChain, err := NNChainFromDistanceMatrix(dm, l)
		if err != nil {
			t.Fatal(err)
		}
		cChain, err := NNChainFromCondensed(cm, l)
		if err != nil {
			t.Fatal(err)
		}
		for i, m := range dChain.Merges() {
			if cChain.Merges()[i] != m {
				t.Fatalf("%v: NN-chain merge %d differs between dense and condensed", l, i)
			}
		}
	}
	// The public condensed entry points must not mutate their input.
	want := vecmath.CondensedDistanceMatrix(vecmath.Euclidean, pts)
	for i, v := range cm.Data() {
		if want.Data()[i] != v {
			t.Fatalf("condensed input was mutated at offset %d", i)
		}
	}
}
