package cluster

import (
	"errors"
	"fmt"
	"math"

	"hmeans/internal/vecmath"
)

// DaviesBouldin returns the Davies–Bouldin index of an assignment
// over the points: the mean, over clusters, of the worst ratio
// (s_i + s_j) / d(c_i, c_j), where s is mean within-cluster distance
// to the centroid and d is centroid separation. Lower is better.
// Singleton clusters have s = 0. It requires at least 2 clusters.
func DaviesBouldin(points []vecmath.Vector, a Assignment) (float64, error) {
	if len(points) != len(a.Labels) {
		return 0, errors.New("cluster: assignment length does not match points")
	}
	if a.K < 2 {
		return 0, &CutError{K: a.K, N: len(points), Reason: "Davies-Bouldin needs at least 2 clusters"}
	}
	dim := len(points[0])
	centroids := make([]vecmath.Vector, a.K)
	counts := make([]int, a.K)
	for c := range centroids {
		centroids[c] = vecmath.NewVector(dim)
	}
	for i, p := range points {
		centroids[a.Labels[i]].AXPYInPlace(1, p)
		counts[a.Labels[i]]++
	}
	for c := range centroids {
		if counts[c] == 0 {
			return 0, errors.New("cluster: empty cluster")
		}
		centroids[c] = centroids[c].Scale(1 / float64(counts[c]))
	}
	scatter := make([]float64, a.K)
	for i, p := range points {
		scatter[a.Labels[i]] += vecmath.EuclideanDistance(p, centroids[a.Labels[i]])
	}
	for c := range scatter {
		scatter[c] /= float64(counts[c])
	}
	sum := 0.0
	for i := 0; i < a.K; i++ {
		worst := 0.0
		for j := 0; j < a.K; j++ {
			if i == j {
				continue
			}
			sep := vecmath.EuclideanDistance(centroids[i], centroids[j])
			if sep == 0 {
				// Coincident centroids: infinitely bad split.
				worst = math.Inf(1)
				continue
			}
			if r := (scatter[i] + scatter[j]) / sep; r > worst {
				worst = r
			}
		}
		sum += worst
	}
	return sum / float64(a.K), nil
}

// KQuality bundles the cluster-count diagnostics for one cut.
type KQuality struct {
	K             int
	Silhouette    float64
	DaviesBouldin float64
	// MergeGap is the gap between the merging distance that creates
	// this cut and the next merge — a wide plateau marks a "natural"
	// cluster count on the dendrogram, the signal the paper reads
	// off its figures by eye.
	MergeGap float64
}

// QualitySweep evaluates every cut in [kMin, kMax] with silhouette,
// Davies–Bouldin and the dendrogram merge-gap. Points must be the
// same ones the dendrogram was built from.
func (d *Dendrogram) QualitySweep(points []vecmath.Vector, kMin, kMax int) ([]KQuality, error) {
	if len(points) != d.n {
		return nil, errors.New("cluster: points do not match dendrogram")
	}
	dm := vecmath.DistanceMatrix(vecmath.Euclidean, points)
	var out []KQuality
	for k := kMin; k <= kMax && k <= d.n; k++ {
		if k < 2 {
			continue
		}
		a, err := d.CutK(k)
		if err != nil {
			return nil, err
		}
		sil, err := Silhouette(dm, a)
		if err != nil {
			return nil, err
		}
		db, err := DaviesBouldin(points, a)
		if err != nil {
			return nil, err
		}
		q := KQuality{K: k, Silhouette: sil, DaviesBouldin: db}
		if _, lo, hi, ok := d.DistanceForK(k); ok {
			if math.IsInf(hi, 1) {
				q.MergeGap = math.Inf(1)
			} else {
				q.MergeGap = hi - lo
			}
		}
		out = append(out, q)
	}
	if len(out) == 0 {
		return nil, &CutError{N: d.n, Reason: fmt.Sprintf("no valid cluster count in quality sweep [%d, %d]", kMin, kMax)}
	}
	return out, nil
}

// RecommendK picks a cluster count from a quality sweep: the k with
// the best silhouette, with Davies–Bouldin as the tie-breaker. This
// mechanizes the judgment call the paper makes by inspecting the
// dendrogram and the score fluctuation ("we recommend the 6 clusters
// case as the norm since it aligns well with the SOM analysis
// results").
func RecommendK(sweep []KQuality) (int, error) {
	if len(sweep) == 0 {
		return 0, &CutError{Reason: "empty quality sweep"}
	}
	best := sweep[0]
	for _, q := range sweep[1:] {
		switch {
		case q.Silhouette > best.Silhouette+1e-12:
			best = q
		case math.Abs(q.Silhouette-best.Silhouette) <= 1e-12 && q.DaviesBouldin < best.DaviesBouldin:
			best = q
		}
	}
	return best.K, nil
}
