package cluster

import (
	"testing"

	"hmeans/internal/vecmath"
)

func BenchmarkDendrogramSuiteScale(b *testing.B) {
	pts := randomPoints(13, 2, 1)
	for _, l := range []Linkage{Complete, Single, Average, Ward} {
		l := l
		b.Run(l.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := NewDendrogram(pts, vecmath.Euclidean, l); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkDendrogramLarge(b *testing.B) {
	// 200 points: the O(n³) naive agglomeration at a size well past
	// any benchmark suite, to keep the scaling behaviour visible.
	pts := randomPoints(200, 4, 2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := NewDendrogram(pts, vecmath.Euclidean, Complete); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCutK(b *testing.B) {
	pts := randomPoints(100, 3, 3)
	d, err := NewDendrogram(pts, vecmath.Euclidean, Complete)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := d.CutK(i%99 + 1); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSilhouette(b *testing.B) {
	pts := randomPoints(100, 3, 4)
	dm := vecmath.DistanceMatrix(vecmath.Euclidean, pts)
	d, err := FromDistanceMatrix(dm, Complete)
	if err != nil {
		b.Fatal(err)
	}
	a, err := d.CutK(6)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Silhouette(dm, a); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkKMeansSuiteScale(b *testing.B) {
	pts := randomPoints(13, 2, 5)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := KMeans(pts, 6, uint64(i), 3); err != nil {
			b.Fatal(err)
		}
	}
}
