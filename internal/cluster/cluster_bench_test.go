package cluster

import (
	"fmt"
	"os"
	"testing"

	"hmeans/internal/par"
	"hmeans/internal/simbench"
	"hmeans/internal/vecmath"
)

func BenchmarkDendrogramSuiteScale(b *testing.B) {
	b.ReportAllocs()
	pts := randomPoints(13, 2, 1)
	for _, l := range []Linkage{Complete, Single, Average, Ward} {
		l := l
		b.Run(l.String(), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := NewDendrogram(pts, vecmath.Euclidean, l); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkDendrogramLarge(b *testing.B) {
	b.ReportAllocs()
	// 200 points: the O(n³) naive agglomeration at a size well past
	// any benchmark suite, to keep the scaling behaviour visible.
	pts := randomPoints(200, 4, 2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := NewDendrogram(pts, vecmath.Euclidean, Complete); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDendrogramSerialVsParallel compares the single-worker
// agglomeration against the full machine at the paper's suite size
// and two production-scale sizes. Both arms produce bit-identical
// merge sequences; the parallel arm shards the distance matrix and
// every nearest-pair scan.
func BenchmarkDendrogramSerialVsParallel(b *testing.B) {
	b.ReportAllocs()
	for _, n := range []int{13, 200, 1000} {
		pts := randomPoints(n, 2, uint64(n))
		for _, arm := range []struct {
			name    string
			workers int
		}{{"serial", 1}, {"parallel", par.Auto()}} {
			b.Run(fmt.Sprintf("n=%d/%s", n, arm.name), func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					if _, err := NewDendrogramP(pts, vecmath.Euclidean, Complete, arm.workers); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkKMeansSerialVsParallel compares the Lloyd assignment step
// at 1 worker against the full machine on a large point set.
func BenchmarkKMeansSerialVsParallel(b *testing.B) {
	b.ReportAllocs()
	pts := randomPoints(1000, 8, 17)
	for _, arm := range []struct {
		name    string
		workers int
	}{{"serial", 1}, {"parallel", par.Auto()}} {
		b.Run(arm.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := KMeansP(pts, 12, 5, 2, arm.workers); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkCutK(b *testing.B) {
	b.ReportAllocs()
	pts := randomPoints(100, 3, 3)
	d, err := NewDendrogram(pts, vecmath.Euclidean, Complete)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := d.CutK(i%99 + 1); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSilhouette(b *testing.B) {
	b.ReportAllocs()
	pts := randomPoints(100, 3, 4)
	dm := vecmath.DistanceMatrix(vecmath.Euclidean, pts)
	d, err := FromDistanceMatrix(dm, Complete)
	if err != nil {
		b.Fatal(err)
	}
	a, err := d.CutK(6)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Silhouette(dm, a); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkKMeansSuiteScale(b *testing.B) {
	b.ReportAllocs()
	pts := randomPoints(13, 2, 5)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := KMeans(pts, 6, uint64(i), 3); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkNewDendrogramSuiteScale measures the full condensed-native
// pipeline (distance build + agglomeration) from the paper's
// 13-workload suite up through production sizes; it is part of the
// allocs/op regression gate. The n=1000 pair keeps the scan-vs-chain
// speed gap continuously measured in the committed baseline; at
// n=10000 only the NN-chain runs in the gate (the scan there takes
// minutes — its one-time measurement lives in EXPERIMENTS.md and the
// env-gated BenchmarkNewDendrogramScanLarge below).
func BenchmarkNewDendrogramSuiteScale(b *testing.B) {
	for _, arm := range []struct {
		name string
		n    int
		algo Algorithm
	}{
		{"n=13", 13, AlgoAuto},
		{"n=1000/scan", 1000, AlgoScan},
		{"n=1000/nnchain", 1000, AlgoNNChain},
		{"n=10000/nnchain", 10000, AlgoNNChain},
	} {
		pts := simbench.SyntheticSpec{N: arm.n, Dims: 3, Clusters: 16, Seed: 1}.Points()
		b.Run(arm.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := NewDendrogramOpts(pts, vecmath.Euclidean, Complete, Options{Algorithm: arm.algo}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// benchLargeEnv is the opt-in switch for the long benchmarks below:
// they run only under `make bench-large`, never in CI or `make bench`
// (which runs every non-gated benchmark at -benchtime=1x).
const benchLargeEnv = "HMEANS_BENCH_LARGE"

// BenchmarkNewDendrogramScanLarge is the one-time oracle measurement
// behind the EXPERIMENTS.md scan-vs-chain table: the retained
// reference scan at n=10000, minutes per op.
func BenchmarkNewDendrogramScanLarge(b *testing.B) {
	if os.Getenv(benchLargeEnv) == "" {
		b.Skipf("set %s=1 (make bench-large) to run the n=10000 scan oracle", benchLargeEnv)
	}
	b.ReportAllocs()
	pts := simbench.SyntheticSpec{N: 10000, Dims: 3, Clusters: 16, Seed: 1}.Points()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := NewDendrogramOpts(pts, vecmath.Euclidean, Complete, Options{Algorithm: AlgoScan}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkNewDendrogramHundredK is the interactive-scale headline:
// n=100000 through the fastest stack — tiled float32 condensed build
// (the full float64 working matrix would be 40 GB; float32 halves it)
// into the NN-chain, which consumes the matrix in place rather than
// cloning it. Wall-clock for one pass is recorded in EXPERIMENTS.md.
func BenchmarkNewDendrogramHundredK(b *testing.B) {
	if os.Getenv(benchLargeEnv) == "" {
		b.Skipf("set %s=1 (make bench-large) to run the n=100000 benchmark", benchLargeEnv)
	}
	b.ReportAllocs()
	pts := simbench.SyntheticSpec{N: 100000, Dims: 3, Clusters: 32, Seed: 1}.Points()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cm := vecmath.Condensed32DistanceMatrixP(vecmath.Euclidean, pts, par.Auto())
		if _, err := NNChainFromCondensed32(cm, Complete); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkNewDendrogramLarge is the gate's production-scale arm:
// 200 points, where the condensed layout's halved working set and
// single-allocation working matrix dominate.
func BenchmarkNewDendrogramLarge(b *testing.B) {
	b.ReportAllocs()
	pts := randomPoints(200, 4, 2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := NewDendrogram(pts, vecmath.Euclidean, Complete); err != nil {
			b.Fatal(err)
		}
	}
}
