package cluster

import (
	"strings"
	"testing"

	"hmeans/internal/rng"
	"hmeans/internal/vecmath"
)

func TestParseAlgorithm(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want Algorithm
	}{
		{"auto", AlgoAuto},
		{"scan", AlgoScan},
		{"nnchain", AlgoNNChain},
	} {
		got, err := ParseAlgorithm(tc.in)
		if err != nil || got != tc.want {
			t.Fatalf("ParseAlgorithm(%q) = %v, %v; want %v", tc.in, got, err, tc.want)
		}
		if got.String() != tc.in {
			t.Fatalf("%v.String() = %q, want %q", got, got.String(), tc.in)
		}
	}
	if _, err := ParseAlgorithm("fast"); err == nil || !strings.Contains(err.Error(), "fast") {
		t.Fatalf("ParseAlgorithm(fast) err = %v, want unknown-value error naming it", err)
	}
}

func TestEffectiveAlgorithm(t *testing.T) {
	for _, tc := range []struct {
		opt  Options
		n    int
		want Algorithm
	}{
		{Options{}, DefaultAutoThreshold, AlgoScan},
		{Options{}, DefaultAutoThreshold + 1, AlgoNNChain},
		{Options{AutoThreshold: 10}, 11, AlgoNNChain},
		{Options{AutoThreshold: 10}, 10, AlgoScan},
		{Options{Algorithm: AlgoScan}, 100000, AlgoScan},
		{Options{Algorithm: AlgoNNChain}, 2, AlgoNNChain},
	} {
		got, err := tc.opt.effectiveAlgorithm(tc.n)
		if err != nil || got != tc.want {
			t.Fatalf("effectiveAlgorithm(%+v, n=%d) = %v, %v; want %v", tc.opt, tc.n, got, err, tc.want)
		}
	}
	if _, err := (Options{Algorithm: Algorithm(42)}).effectiveAlgorithm(5); err == nil {
		t.Fatal("effectiveAlgorithm accepted an out-of-range Algorithm")
	}
	if _, err := NewDendrogramOpts(fourPoints(), vecmath.Euclidean, Complete, Options{Algorithm: Algorithm(42)}); err == nil {
		t.Fatal("NewDendrogramOpts accepted an out-of-range Algorithm")
	}
}

// TestScanChainMergeIdentity is the tentpole oracle: for all four
// linkages and seeds 1–5 at random sizes, forcing AlgoScan and
// AlgoNNChain through the same Options entry point must yield
// identical merge sequences. Gaussian points make tied merge heights
// measure-zero, so cluster ids and sizes must match exactly. Heights
// are bit-identical for Complete and Single (min/max pick one of the
// original pair distances, immune to evaluation order); Average and
// Ward evaluate the same weighted Lance–Williams recursion in a
// different nesting order — equal in exact arithmetic, so the float
// results may differ by reassociation rounding only, bounded here at
// 1e-9 relative (matching the package's NN-chain oracle tolerance).
func TestScanChainMergeIdentity(t *testing.T) {
	for _, l := range []Linkage{Complete, Single, Average, Ward} {
		for seed := uint64(1); seed <= 5; seed++ {
			r := rng.New(seed * 977)
			n := 20 + r.Intn(120)
			pts := randomPoints(n, 3, seed)
			scan, err := NewDendrogramOpts(pts, vecmath.Euclidean, l, Options{Algorithm: AlgoScan})
			if err != nil {
				t.Fatalf("%v seed %d: scan: %v", l, seed, err)
			}
			chain, err := NewDendrogramOpts(pts, vecmath.Euclidean, l, Options{Algorithm: AlgoNNChain})
			if err != nil {
				t.Fatalf("%v seed %d: nnchain: %v", l, seed, err)
			}
			if len(scan.Merges()) != len(chain.Merges()) {
				t.Fatalf("%v seed %d: %d vs %d merges", l, seed, len(scan.Merges()), len(chain.Merges()))
			}
			exactHeights := l == Complete || l == Single
			for i, sm := range scan.Merges() {
				cm := chain.Merges()[i]
				if sm.A != cm.A || sm.B != cm.B || sm.Size != cm.Size {
					t.Fatalf("%v seed %d n=%d: merge %d scan=%+v chain=%+v", l, seed, n, i, sm, cm)
				}
				if exactHeights {
					if sm.Distance != cm.Distance {
						t.Fatalf("%v seed %d n=%d: merge %d height %v != %v (must be bit-identical)",
							l, seed, n, i, cm.Distance, sm.Distance)
					}
				} else if diff := cm.Distance - sm.Distance; diff > 1e-9*sm.Distance || diff < -1e-9*sm.Distance {
					t.Fatalf("%v seed %d n=%d: merge %d height %v, want %v within 1e-9 rel",
						l, seed, n, i, cm.Distance, sm.Distance)
				}
			}
		}
	}
}

// TestAutoSwitchesToChain pins the auto policy at the boundary: above
// the threshold the auto result must equal the forced NN-chain result,
// and at or below it the forced scan result.
func TestAutoSwitchesToChain(t *testing.T) {
	pts := randomPoints(DefaultAutoThreshold+10, 3, 7)
	auto, err := NewDendrogramOpts(pts, vecmath.Euclidean, Complete, Options{})
	if err != nil {
		t.Fatal(err)
	}
	chain, err := NewDendrogramOpts(pts, vecmath.Euclidean, Complete, Options{Algorithm: AlgoNNChain})
	if err != nil {
		t.Fatal(err)
	}
	for i, m := range auto.Merges() {
		if m != chain.Merges()[i] {
			t.Fatalf("auto above threshold diverged from nnchain at merge %d", i)
		}
	}
	small := randomPoints(40, 3, 7)
	autoSmall, err := NewDendrogramOpts(small, vecmath.Euclidean, Complete, Options{})
	if err != nil {
		t.Fatal(err)
	}
	scanSmall, err := NewDendrogramOpts(small, vecmath.Euclidean, Complete, Options{Algorithm: AlgoScan})
	if err != nil {
		t.Fatal(err)
	}
	for i, m := range autoSmall.Merges() {
		if m != scanSmall.Merges()[i] {
			t.Fatalf("auto below threshold diverged from scan at merge %d", i)
		}
	}
}

// TestMergeUpdateCondensedMatchesReference proves the
// incremental-address Lance–Williams pass bit-identical to the
// retained At/Set reference on random working matrices, for all four
// linkages, with the merge roles in both slot orders (a < b and
// a > b) and inactive slots scattered through the range.
func TestMergeUpdateCondensedMatchesReference(t *testing.T) {
	const n = 23
	for _, l := range []Linkage{Complete, Single, Average, Ward} {
		for seed := uint64(1); seed <= 5; seed++ {
			r := rng.New(seed)
			base := vecmath.NewCondensedMatrix(n)
			for s := range base.Data() {
				base.Data()[s] = r.Float64() * 10
			}
			active := make([]bool, n)
			size := make([]int, n)
			for i := range active {
				active[i] = r.Float64() < 0.8
				size[i] = 1 + r.Intn(5)
			}
			for _, ab := range [][2]int{{3, 17}, {17, 3}, {0, n - 1}, {11, 12}} {
				a, b := ab[0], ab[1]
				active[a], active[b] = true, true
				ref := base.Clone()
				l.mergeUpdate(ref, active, size, a, b)
				fast := base.Clone()
				mergeUpdateCondensed(l, fast, active, size, a, b)
				for s, v := range fast.Data() {
					if v != ref.Data()[s] {
						t.Fatalf("%v seed %d merge (%d,%d): slot %d = %v, want %v",
							l, seed, a, b, s, v, ref.Data()[s])
					}
				}
			}
		}
	}
}

// TestNNChainCondensed32MatchesFloat64 checks the opt-in float32
// chain against the float64 tree on well-separated Gaussian points:
// the ~2⁻²⁴ storage rounding must not reorder any merges, so the
// topology (ids, sizes) is identical and every height is within the
// documented relative bound of the float64 height.
func TestNNChainCondensed32MatchesFloat64(t *testing.T) {
	for seed := uint64(1); seed <= 3; seed++ {
		pts := randomPoints(150, 3, seed)
		for _, l := range []Linkage{Complete, Single, Average, Ward} {
			d64, err := NNChainFromCondensed(vecmath.CondensedDistanceMatrix(vecmath.Euclidean, pts), l)
			if err != nil {
				t.Fatal(err)
			}
			d32, err := NNChainFromCondensed32(vecmath.Condensed32DistanceMatrix(vecmath.Euclidean, pts), l)
			if err != nil {
				t.Fatal(err)
			}
			for i, m64 := range d64.Merges() {
				m32 := d32.Merges()[i]
				if m32.A != m64.A || m32.B != m64.B || m32.Size != m64.Size {
					t.Fatalf("%v seed %d: merge %d topology %+v, want %+v", l, seed, i, m32, m64)
				}
				if diff := m32.Distance - m64.Distance; diff > 1e-5*m64.Distance || diff < -1e-5*m64.Distance {
					t.Fatalf("%v seed %d: merge %d height %v, want %v within 1e-5 rel",
						l, seed, i, m32.Distance, m64.Distance)
				}
			}
		}
	}
}
