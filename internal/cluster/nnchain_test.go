package cluster

import (
	"errors"
	"math"
	"sort"
	"testing"
	"testing/quick"

	"hmeans/internal/vecmath"
)

func TestNNChainMatchesNaiveExactly(t *testing.T) {
	// Random points in general position: merge heights are distinct,
	// so the two algorithms must produce identical trees.
	for _, l := range []Linkage{Complete, Single, Average, Ward} {
		l := l
		f := func(seed uint64) bool {
			n := int(seed%20) + 2
			pts := randomPoints(n, 3, seed^0xabc)
			naive, err1 := NewDendrogram(pts, vecmath.Euclidean, l)
			fast, err2 := NNChainDendrogram(pts, vecmath.Euclidean, l)
			if err1 != nil || err2 != nil {
				return false
			}
			// Same merge heights in order.
			hn, hf := naive.MergeDistances(), fast.MergeDistances()
			for i := range hn {
				if math.Abs(hn[i]-hf[i]) > 1e-9 {
					return false
				}
			}
			// Same partition at every cut.
			for k := 1; k <= n; k++ {
				an, err := naive.CutK(k)
				if err != nil {
					return false
				}
				af, err := fast.CutK(k)
				if err != nil {
					return false
				}
				r, err := AgreementRate(an, af)
				if err != nil || r != 1 {
					return false
				}
			}
			return true
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
			t.Fatalf("linkage %v: %v", l, err)
		}
	}
}

func TestNNChainKnownInstance(t *testing.T) {
	d, err := NNChainDendrogram(fourPoints(), vecmath.Euclidean, Complete)
	if err != nil {
		t.Fatal(err)
	}
	m := d.Merges()
	if m[0].A != 0 || m[0].B != 1 || m[0].Distance != 1 {
		t.Fatalf("first merge %+v", m[0])
	}
	if m[1].A != 2 || m[1].B != 3 || m[1].Distance != 2 {
		t.Fatalf("second merge %+v", m[1])
	}
	if m[2].Distance != 12 {
		t.Fatalf("final merge %+v", m[2])
	}
}

func TestNNChainErrors(t *testing.T) {
	if _, err := NNChainDendrogram(nil, vecmath.Euclidean, Complete); !errors.Is(err, ErrNoPoints) {
		t.Error("empty input accepted")
	}
	if _, err := NNChainFromDistanceMatrix(vecmath.NewMatrix(2, 3), Complete); err == nil {
		t.Error("non-square matrix accepted")
	}
	asym := vecmath.FromRows([][]float64{{0, 1}, {2, 0}})
	if _, err := NNChainFromDistanceMatrix(asym, Complete); err == nil {
		t.Error("asymmetric matrix accepted")
	}
	neg := vecmath.FromRows([][]float64{{0, -1}, {-1, 0}})
	if _, err := NNChainFromDistanceMatrix(neg, Complete); err == nil {
		t.Error("negative distance accepted")
	}
}

func TestNNChainSinglePoint(t *testing.T) {
	d, err := NNChainDendrogram([]vecmath.Vector{{1, 2}}, vecmath.Euclidean, Average)
	if err != nil || d.Len() != 1 || len(d.Merges()) != 0 {
		t.Fatalf("single point: %v, %v", d, err)
	}
}

func TestNNChainMergesSorted(t *testing.T) {
	f := func(seed uint64) bool {
		pts := randomPoints(int(seed%15)+3, 2, seed^0x1234)
		d, err := NNChainDendrogram(pts, vecmath.Euclidean, Average)
		if err != nil {
			return false
		}
		hs := d.MergeDistances()
		return sort.Float64sAreSorted(hs)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

func TestNNChainWithTies(t *testing.T) {
	// A perfect square: four equal sides and equal diagonals create
	// massive ties. The tree may differ from the naive one in
	// labelling, but every cut must be a valid partition and the
	// height multiset must match.
	pts := []vecmath.Vector{{0, 0}, {1, 0}, {1, 1}, {0, 1}}
	naive, err := NewDendrogram(pts, vecmath.Euclidean, Single)
	if err != nil {
		t.Fatal(err)
	}
	fast, err := NNChainDendrogram(pts, vecmath.Euclidean, Single)
	if err != nil {
		t.Fatal(err)
	}
	hn, hf := naive.MergeDistances(), fast.MergeDistances()
	sort.Float64s(hn)
	sort.Float64s(hf)
	for i := range hn {
		if math.Abs(hn[i]-hf[i]) > 1e-12 {
			t.Fatalf("height multiset differs: %v vs %v", hn, hf)
		}
	}
	for k := 1; k <= 4; k++ {
		a, err := fast.CutK(k)
		if err != nil || a.K != k {
			t.Fatalf("cut k=%d: %+v, %v", k, a, err)
		}
	}
}

func BenchmarkNNChainVsNaive(b *testing.B) {
	b.ReportAllocs()
	pts := randomPoints(200, 4, 2)
	b.Run("naive-200", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := NewDendrogram(pts, vecmath.Euclidean, Complete); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("nnchain-200", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := NNChainDendrogram(pts, vecmath.Euclidean, Complete); err != nil {
				b.Fatal(err)
			}
		}
	})
}
