package cluster

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
)

// dendrogramJSON is the serialized form of a merge tree.
type dendrogramJSON struct {
	N       int     `json:"n"`
	Linkage Linkage `json:"linkage"`
	Merges  []Merge `json:"merges"`
}

// Save writes the dendrogram as JSON. Together with som.Map.Save this
// lets a consortium publish the *reference clustering* the paper says
// must be fixed before hierarchical means can be a standard: vendors
// reload the tree and cut it identically.
func (d *Dendrogram) Save(w io.Writer) error {
	return json.NewEncoder(w).Encode(dendrogramJSON{N: d.n, Linkage: d.linkage, Merges: d.merges})
}

// LoadDendrogram reads a dendrogram saved with Save, validating its
// structure (n−1 merges referencing valid cluster ids exactly once
// each).
func LoadDendrogram(r io.Reader) (*Dendrogram, error) {
	var in dendrogramJSON
	if err := json.NewDecoder(r).Decode(&in); err != nil {
		return nil, fmt.Errorf("cluster: decoding dendrogram: %w", err)
	}
	if in.N < 1 {
		return nil, errors.New("cluster: saved dendrogram has no leaves")
	}
	if len(in.Merges) != in.N-1 {
		return nil, fmt.Errorf("cluster: %d merges for %d leaves, want %d", len(in.Merges), in.N, in.N-1)
	}
	used := make([]bool, 2*in.N-1)
	for s, m := range in.Merges {
		limit := in.N + s // ids created before this step
		if m.A < 0 || m.B < 0 || m.A >= limit || m.B >= limit || m.A == m.B {
			return nil, fmt.Errorf("cluster: merge %d references invalid ids (%d, %d)", s, m.A, m.B)
		}
		if used[m.A] || used[m.B] {
			return nil, fmt.Errorf("cluster: merge %d reuses a consumed cluster id", s)
		}
		used[m.A] = true
		used[m.B] = true
		if m.Distance < 0 {
			return nil, fmt.Errorf("cluster: merge %d has negative distance", s)
		}
		if s > 0 && m.Distance < in.Merges[s-1].Distance {
			return nil, fmt.Errorf("cluster: merge distances not monotone at step %d", s)
		}
	}
	return &Dendrogram{n: in.N, linkage: in.Linkage, merges: in.Merges}, nil
}
