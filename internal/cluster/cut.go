package cluster

import (
	"errors"
	"fmt"
	"math"
	"sort"
)

// ErrDegenerateCut marks a cut or quality request the dendrogram
// cannot satisfy: a cluster count outside [1, n], an empty sweep
// range, or a diagnostic that needs at least two clusters. Check with
// errors.Is(err, ErrDegenerateCut); the concrete *CutError carries
// the offending request.
var ErrDegenerateCut = errors.New("cluster: degenerate cut")

// CutError details a degenerate cut request.
type CutError struct {
	// K is the requested cluster count (0 when no single k applies).
	K int
	// N is the dendrogram's leaf count.
	N int
	// Reason says what made the request unsatisfiable.
	Reason string
}

// Error formats the request and the reason it is unsatisfiable.
func (e *CutError) Error() string {
	return fmt.Sprintf("cluster: degenerate cut (k=%d, n=%d): %s", e.K, e.N, e.Reason)
}

// Unwrap ties every CutError to the ErrDegenerateCut sentinel.
func (e *CutError) Unwrap() error { return ErrDegenerateCut }

// DataError classifies the error as an input problem rather than an
// internal failure; internal/cliutil maps it to the data exit code.
func (e *CutError) DataError() bool { return true }

// Assignment maps each leaf index to a cluster label in [0, k). The
// labels are canonicalized: cluster 0 is the one containing the
// lowest leaf index, cluster 1 the one containing the lowest leaf not
// in cluster 0, and so on, which makes assignments comparable across
// runs.
type Assignment struct {
	Labels []int
	K      int
}

// Members returns the leaf indices of each cluster, indexed by label.
func (a Assignment) Members() [][]int {
	out := make([][]int, a.K)
	for leaf, label := range a.Labels {
		out[label] = append(out[label], leaf)
	}
	return out
}

// Sizes returns the number of leaves per cluster label.
func (a Assignment) Sizes() []int {
	out := make([]int, a.K)
	for _, label := range a.Labels {
		out[label]++
	}
	return out
}

// CutK cuts the dendrogram so that exactly k clusters remain: the
// last k−1 merges are undone. k must lie in [1, n].
func (d *Dendrogram) CutK(k int) (Assignment, error) {
	if k < 1 || k > d.n {
		return Assignment{}, &CutError{K: k, N: d.n, Reason: "cluster count outside [1, n]"}
	}
	return d.assignment(d.n - k), nil
}

// CutDistance cuts the dendrogram at the given merging distance:
// every merge with Distance <= maxDist is applied, matching the
// paper's reading of the dendrogram ("workloads that locate closer to
// each other than the merging distance form a cluster").
func (d *Dendrogram) CutDistance(maxDist float64) Assignment {
	applied := 0
	for _, m := range d.merges {
		if m.Distance <= maxDist {
			applied++
		}
	}
	// Merge heights are non-decreasing for the metric linkages, so
	// the first `applied` merges are exactly those below the cut.
	return d.assignment(applied)
}

// assignment applies the first `applied` merges and labels the
// resulting clusters canonically.
func (d *Dendrogram) assignment(applied int) Assignment {
	parent := make([]int, d.n+applied)
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	for s := 0; s < applied; s++ {
		m := d.merges[s]
		created := d.n + s
		parent[find(m.A)] = created
		parent[find(m.B)] = created
	}
	labels := make([]int, d.n)
	rootLabel := map[int]int{}
	next := 0
	for leaf := 0; leaf < d.n; leaf++ {
		root := find(leaf)
		l, ok := rootLabel[root]
		if !ok {
			l = next
			rootLabel[root] = l
			next++
		}
		labels[leaf] = l
	}
	return Assignment{Labels: labels, K: next}
}

// CutsByK returns assignments for every k in [kMin, kMax]
// (inclusive), clamped to the valid range — the sweep the paper's
// Tables IV–VI report (2..8 clusters).
func (d *Dendrogram) CutsByK(kMin, kMax int) (map[int]Assignment, error) {
	if kMin > kMax {
		return nil, &CutError{N: d.n, Reason: fmt.Sprintf("empty cut range [%d, %d]", kMin, kMax)}
	}
	out := make(map[int]Assignment)
	for k := kMin; k <= kMax; k++ {
		if k < 1 || k > d.n {
			continue
		}
		a, err := d.CutK(k)
		if err != nil {
			return nil, err
		}
		out[k] = a
	}
	return out, nil
}

// KAtDistance returns how many clusters a cut at maxDist produces.
func (d *Dendrogram) KAtDistance(maxDist float64) int {
	return d.CutDistance(maxDist).K
}

// DistanceForK returns a merging distance whose cut yields exactly k
// clusters, specifically the midpoint of the k-cluster plateau of the
// dendrogram, along with the plateau bounds [lo, hi). When several
// merges share a height the plateau can be empty for some k; ok is
// false in that case (that k is unachievable by a horizontal cut).
func (d *Dendrogram) DistanceForK(k int) (dist, lo, hi float64, ok bool) {
	if k < 1 || k > d.n {
		return 0, 0, 0, false
	}
	heights := d.MergeDistances()
	sort.Float64s(heights)
	// Cutting strictly below heights[n-k] but at/above heights[n-k-1]
	// yields k clusters.
	if k == d.n {
		if len(heights) == 0 {
			return 0, 0, 0, true
		}
		return heights[0] / 2, 0, heights[0], heights[0] > 0
	}
	if k == 1 {
		// Everything merges at or above the final height; any cut at
		// or beyond it yields one cluster.
		top := heights[len(heights)-1]
		return top, top, math.Inf(1), true
	}
	hiIdx := len(heights) - k + 1 // first merge NOT applied
	lo = heights[hiIdx-1]
	hi = heights[hiIdx]
	if hi <= lo {
		return 0, lo, hi, false
	}
	return (lo + hi) / 2, lo, hi, true
}
