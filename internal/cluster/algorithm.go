package cluster

import "fmt"

// Algorithm selects the agglomeration strategy that turns a condensed
// distance matrix into a dendrogram.
type Algorithm int

const (
	// AlgoAuto (the default) picks per run: the nearest-pair scan up
	// to AutoThreshold points, NN-chain above it. Small suites keep
	// the historical scan output byte-for-byte — SOM grid positions
	// produce many tied merge heights, and with ties the two
	// algorithms build equivalent but not identical trees — while
	// large runs get the O(n²) path the scan's O(n³) cannot match.
	AlgoAuto Algorithm = iota
	// AlgoScan forces the naive O(n³) nearest-pair scan — the oracle
	// path every fast path is proven against.
	AlgoScan
	// AlgoNNChain forces the O(n²) nearest-neighbour-chain algorithm,
	// exact for all four (reducible) linkages; see NNChainDendrogram.
	AlgoNNChain
)

// DefaultAutoThreshold is the point count above which AlgoAuto
// switches from the scan to NN-chain. Below it the scan finishes in
// well under a millisecond, so nothing is gained by switching — and
// staying put keeps historical outputs (first-minimal tie-breaks on
// tied merge heights, common with integer SOM grid coordinates)
// byte-identical. Above it the scan's O(n³) grows two orders of
// magnitude per decade of n while NN-chain grows one.
const DefaultAutoThreshold = 128

// String returns the algorithm's flag spelling.
func (a Algorithm) String() string {
	switch a {
	case AlgoAuto:
		return "auto"
	case AlgoScan:
		return "scan"
	case AlgoNNChain:
		return "nnchain"
	default:
		return "unknown"
	}
}

// ParseAlgorithm maps a -linkage-algo flag value to an Algorithm.
func ParseAlgorithm(s string) (Algorithm, error) {
	switch s {
	case "auto":
		return AlgoAuto, nil
	case "scan":
		return AlgoScan, nil
	case "nnchain":
		return AlgoNNChain, nil
	default:
		return 0, fmt.Errorf("unknown linkage algorithm %q (want auto, scan or nnchain)", s)
	}
}

// effectiveAlgorithm resolves the Options' algorithm selection for a
// run over n points, collapsing AlgoAuto to a concrete path.
func (o Options) effectiveAlgorithm(n int) (Algorithm, error) {
	switch o.Algorithm {
	case AlgoScan, AlgoNNChain:
		return o.Algorithm, nil
	case AlgoAuto:
		threshold := o.AutoThreshold
		if threshold <= 0 {
			threshold = DefaultAutoThreshold
		}
		if n > threshold {
			return AlgoNNChain, nil
		}
		return AlgoScan, nil
	default:
		return 0, fmt.Errorf("cluster: unknown algorithm %d", int(o.Algorithm))
	}
}
