package cluster

import (
	"bytes"
	"strings"
	"testing"

	"hmeans/internal/vecmath"
)

func TestDendrogramSaveLoadRoundTrip(t *testing.T) {
	pts := randomPoints(10, 2, 77)
	d, err := NewDendrogram(pts, vecmath.Euclidean, Average)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := d.Save(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := LoadDendrogram(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != d.Len() || back.Linkage() != d.Linkage() {
		t.Fatalf("shape changed: %d/%v vs %d/%v", back.Len(), back.Linkage(), d.Len(), d.Linkage())
	}
	// Every cut must be identical.
	for k := 1; k <= d.Len(); k++ {
		a1, err := d.CutK(k)
		if err != nil {
			t.Fatal(err)
		}
		a2, err := back.CutK(k)
		if err != nil {
			t.Fatal(err)
		}
		for i := range a1.Labels {
			if a1.Labels[i] != a2.Labels[i] {
				t.Fatalf("cut k=%d differs after round trip", k)
			}
		}
	}
}

func TestLoadDendrogramRejectsGarbage(t *testing.T) {
	cases := []string{
		"not json",
		`{"n":0,"merges":[]}`,
		`{"n":3,"merges":[]}`, // wrong merge count
		`{"n":2,"merges":[{"A":0,"B":0,"Distance":1,"Size":2}]}`,                                     // A == B
		`{"n":2,"merges":[{"A":0,"B":5,"Distance":1,"Size":2}]}`,                                     // id out of range
		`{"n":2,"merges":[{"A":0,"B":1,"Distance":-1,"Size":2}]}`,                                    // negative distance
		`{"n":3,"merges":[{"A":0,"B":1,"Distance":2,"Size":2},{"A":0,"B":2,"Distance":3,"Size":3}]}`, // id 0 reused
		`{"n":3,"merges":[{"A":0,"B":1,"Distance":2,"Size":2},{"A":3,"B":2,"Distance":1,"Size":3}]}`, // non-monotone
	}
	for _, c := range cases {
		if _, err := LoadDendrogram(strings.NewReader(c)); err == nil {
			t.Errorf("LoadDendrogram accepted %q", c)
		}
	}
}

func TestLoadDendrogramSingleLeaf(t *testing.T) {
	d, err := LoadDendrogram(strings.NewReader(`{"n":1,"merges":[]}`))
	if err != nil {
		t.Fatal(err)
	}
	a, err := d.CutK(1)
	if err != nil || a.K != 1 {
		t.Fatalf("single-leaf cut = %+v, %v", a, err)
	}
}
