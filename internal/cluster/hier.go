package cluster

import (
	"errors"
	"fmt"
	"math"

	"hmeans/internal/vecmath"
)

// ErrNoPoints is returned when clustering is requested on an empty
// point set.
var ErrNoPoints = errors.New("cluster: no points")

// Merge records one agglomeration step. Cluster ids follow the
// scipy/R convention: ids 0..n-1 are the leaves (input points); the
// merge at step s creates cluster id n+s.
type Merge struct {
	// A and B are the ids of the merged clusters, with A < B.
	A, B int
	// Distance is the linkage distance at which the merge happened —
	// the "merging distance" on the dendrogram's y-axis.
	Distance float64
	// Size is the number of leaves in the new cluster.
	Size int
}

// Dendrogram is the full merge tree of an agglomerative clustering of
// n points: exactly n−1 merges, ordered by execution (non-decreasing
// distance for the standard linkages on a metric).
type Dendrogram struct {
	n       int
	linkage Linkage
	merges  []Merge
}

// NewDendrogram runs bottom-up agglomerative clustering over the
// given points under metric m and the selected linkage, following the
// paper's algorithm: start with singleton clusters, repeatedly merge
// the closest pair until one cluster remains.
func NewDendrogram(points []vecmath.Vector, m vecmath.Metric, l Linkage) (*Dendrogram, error) {
	if len(points) == 0 {
		return nil, ErrNoPoints
	}
	dm := vecmath.DistanceMatrix(m, points)
	return FromDistanceMatrix(dm, l)
}

// FromDistanceMatrix clusters from a precomputed symmetric distance
// matrix. Ward linkage interprets the entries as Euclidean distances
// (they are squared internally and merge heights are reported back on
// the original scale).
func FromDistanceMatrix(dm *vecmath.Matrix, l Linkage) (*Dendrogram, error) {
	n := dm.Rows()
	if n == 0 || dm.Cols() != n {
		return nil, fmt.Errorf("cluster: distance matrix must be square and non-empty, got %dx%d", dm.Rows(), dm.Cols())
	}
	if !dm.IsSymmetric(1e-9) {
		return nil, errors.New("cluster: distance matrix is not symmetric")
	}
	d := &Dendrogram{n: n, linkage: l, merges: make([]Merge, 0, n-1)}
	if n == 1 {
		return d, nil
	}

	// Working pairwise distances between *active* clusters, indexed
	// by slot in [0, n); slot i initially holds leaf i. After a merge
	// the merged cluster reuses the lower slot and the higher slot is
	// deactivated.
	dist := make([][]float64, n)
	for i := range dist {
		dist[i] = make([]float64, n)
		for j := 0; j < n; j++ {
			v := dm.At(i, j)
			if v < 0 || math.IsNaN(v) {
				return nil, fmt.Errorf("cluster: invalid distance %v at (%d,%d)", v, i, j)
			}
			if l == Ward {
				v *= v
			}
			dist[i][j] = v
		}
	}
	active := make([]bool, n)
	id := make([]int, n)   // cluster id held by each slot
	size := make([]int, n) // leaf count per slot
	for i := range active {
		active[i] = true
		id[i] = i
		size[i] = 1
	}

	nextID := n
	for step := 0; step < n-1; step++ {
		// Find the closest active pair. O(n²) per step is fine at the
		// scale of benchmark suites (tens of workloads) and keeps the
		// algorithm a faithful transcription of the paper's pseudo
		// code.
		bi, bj, best := -1, -1, math.Inf(1)
		for i := 0; i < n; i++ {
			if !active[i] {
				continue
			}
			for j := i + 1; j < n; j++ {
				if !active[j] {
					continue
				}
				if dist[i][j] < best {
					bi, bj, best = i, j, dist[i][j]
				}
			}
		}
		// Update distances from the merged cluster (slot bi) to every
		// other active cluster via Lance–Williams.
		for k := 0; k < n; k++ {
			if !active[k] || k == bi || k == bj {
				continue
			}
			nd := l.update(dist[bi][k], dist[bj][k], dist[bi][bj], size[bi], size[bj], size[k])
			dist[bi][k] = nd
			dist[k][bi] = nd
		}
		height := best
		if l == Ward {
			height = math.Sqrt(best)
		}
		a, b := id[bi], id[bj]
		if a > b {
			a, b = b, a
		}
		d.merges = append(d.merges, Merge{A: a, B: b, Distance: height, Size: size[bi] + size[bj]})
		size[bi] += size[bj]
		id[bi] = nextID
		nextID++
		active[bj] = false
	}
	return d, nil
}

// Len returns the number of clustered points (leaves).
func (d *Dendrogram) Len() int { return d.n }

// Linkage returns the linkage the dendrogram was built with.
func (d *Dendrogram) Linkage() Linkage { return d.linkage }

// Merges returns the merge sequence. The slice is shared; callers
// must not modify it.
func (d *Dendrogram) Merges() []Merge { return d.merges }

// MergeDistances returns the n−1 merge heights in execution order.
func (d *Dendrogram) MergeDistances() []float64 {
	out := make([]float64, len(d.merges))
	for i, m := range d.merges {
		out[i] = m.Distance
	}
	return out
}
