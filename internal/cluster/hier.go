package cluster

import (
	"context"
	"errors"
	"fmt"
	"math"

	"hmeans/internal/obs"
	"hmeans/internal/par"
	"hmeans/internal/vecmath"
)

// ErrNoPoints is returned when clustering is requested on an empty
// point set.
var ErrNoPoints = errors.New("cluster: no points")

// Merge records one agglomeration step. Cluster ids follow the
// scipy/R convention: ids 0..n-1 are the leaves (input points); the
// merge at step s creates cluster id n+s.
type Merge struct {
	// A and B are the ids of the merged clusters, with A < B.
	A, B int
	// Distance is the linkage distance at which the merge happened —
	// the "merging distance" on the dendrogram's y-axis.
	Distance float64
	// Size is the number of leaves in the new cluster.
	Size int
}

// Dendrogram is the full merge tree of an agglomerative clustering of
// n points: exactly n−1 merges, ordered by execution (non-decreasing
// distance for the standard linkages on a metric).
type Dendrogram struct {
	n       int
	linkage Linkage
	merges  []Merge
}

// NewDendrogram runs bottom-up agglomerative clustering over the
// given points under metric m and the selected linkage, following the
// paper's algorithm: start with singleton clusters, repeatedly merge
// the closest pair until one cluster remains.
func NewDendrogram(points []vecmath.Vector, m vecmath.Metric, l Linkage) (*Dendrogram, error) {
	return NewDendrogramP(points, m, l, 1)
}

// NewDendrogramP is NewDendrogram with the distance-matrix build and
// every nearest-pair scan sharded across `workers` goroutines. The
// merge sequence is bit-identical to the serial path for any worker
// count: distances are pure per-pair functions, and the scan
// reduction preserves the serial tie-break (first minimal pair in
// row-major order).
func NewDendrogramP(points []vecmath.Vector, m vecmath.Metric, l Linkage, workers int) (*Dendrogram, error) {
	return NewDendrogramOpts(points, m, l, Options{Workers: workers})
}

// Options bundles the optional knobs of dendrogram construction.
type Options struct {
	// Workers is the goroutine count for the matrix build and the
	// nearest-pair scans; <= 1 runs serially. Results are identical
	// for every value.
	Workers int
	// Ctx cancels the construction cooperatively: the matrix build
	// stops dispatching row shards and the agglomeration stops between
	// merge steps once the context fires, returning its error. Nil
	// means no cancellation; a context that never fires leaves the
	// result bit-identical.
	Ctx context.Context
	// Obs receives a cluster.linkage span and the merge-distance
	// histogram. Nil falls back to the process-default observer.
	Obs *obs.Observer
	// MergeEvents additionally emits one cluster.merge event per
	// agglomeration step. That is O(n) events per clustering — cheap
	// for benchmark suites, noisy for thousands of points — so it is
	// off unless requested (Observer.Detail is the conventional
	// source).
	MergeEvents bool
	// Algorithm selects the agglomeration strategy. The default
	// AlgoAuto runs the historical O(n³) nearest-pair scan up to
	// AutoThreshold points and the O(n²) NN-chain above it; AlgoScan
	// and AlgoNNChain force one path. The two algorithms produce
	// identical merge sequences whenever pairwise merge heights are
	// distinct; with ties (common for integer SOM grid positions) they
	// build equivalent trees — same height multiset, possibly
	// different ids — which is why auto keeps small suites on the
	// scan's historical output.
	Algorithm Algorithm
	// AutoThreshold overrides the point count above which AlgoAuto
	// switches to NN-chain; <= 0 means DefaultAutoThreshold.
	AutoThreshold int
}

// NewDendrogramOpts is NewDendrogram with explicit Options. The
// pairwise distances are built directly in condensed (upper-triangle)
// form — n(n−1)/2 floats instead of n² — and the agglomeration runs
// natively on that layout; no dense matrix is ever materialized.
func NewDendrogramOpts(points []vecmath.Vector, m vecmath.Metric, l Linkage, opt Options) (*Dendrogram, error) {
	if len(points) == 0 {
		return nil, ErrNoPoints
	}
	ctx := opt.Ctx
	if ctx == nil {
		ctx = context.Background()
	}
	cm, err := vecmath.CondensedDistanceMatrixCtx(ctx, m, points, opt.Workers)
	if err != nil {
		return nil, fmt.Errorf("cluster: distance matrix: %w", err)
	}
	// The freshly built matrix is ours: hand it over as the working
	// matrix instead of cloning it.
	return fromCondensed(cm, l, opt, true)
}

// FromDistanceMatrix clusters from a precomputed symmetric distance
// matrix. Ward linkage interprets the entries as Euclidean distances
// (they are squared internally and merge heights are reported back on
// the original scale).
func FromDistanceMatrix(dm *vecmath.Matrix, l Linkage) (*Dendrogram, error) {
	return FromDistanceMatrixP(dm, l, 1)
}

// pairCand is one worker's best merge candidate from a nearest-pair
// scan over a chunk of matrix rows; i < 0 marks "no active pair seen".
type pairCand struct {
	i, j int
	d    float64
}

// FromDistanceMatrixP is FromDistanceMatrix with every nearest-pair
// scan sharded across `workers` goroutines; see NewDendrogramP for
// the determinism argument.
func FromDistanceMatrixP(dm *vecmath.Matrix, l Linkage, workers int) (*Dendrogram, error) {
	return FromDistanceMatrixOpts(dm, l, Options{Workers: workers})
}

// FromDistanceMatrixOpts is FromDistanceMatrix with explicit
// Options. It is a thin adapter: the dense matrix is checked for
// shape and symmetry, condensed to upper-triangle form, and handed to
// the condensed-native agglomeration.
func FromDistanceMatrixOpts(dm *vecmath.Matrix, l Linkage, opt Options) (*Dendrogram, error) {
	cm, err := condenseChecked(dm)
	if err != nil {
		return nil, err
	}
	// The condensed copy is private to this call, so the agglomeration
	// may consume it as its working matrix.
	return fromCondensed(cm, l, opt, true)
}

// FromCondensed clusters from a precomputed condensed distance
// matrix; see FromCondensedOpts.
func FromCondensed(cm *vecmath.CondensedMatrix, l Linkage) (*Dendrogram, error) {
	return FromCondensedOpts(cm, l, Options{})
}

// FromCondensedOpts clusters from a precomputed condensed (strict
// upper-triangle) distance matrix — the agglomeration's native
// layout: half the memory of the dense form, contiguous row tails for
// the nearest-pair scans, and a single shared slot per symmetric pair
// so Lance–Williams updates write once. Ward linkage interprets the
// entries as Euclidean distances exactly as FromDistanceMatrix does.
// The input matrix is not modified.
func FromCondensedOpts(cm *vecmath.CondensedMatrix, l Linkage, opt Options) (*Dendrogram, error) {
	return fromCondensed(cm, l, opt, false)
}

// condenseChecked validates a dense distance matrix (shape, symmetry,
// diagonal entries — the off-diagonals are validated by the condensed
// agglomeration itself) and condenses it.
func condenseChecked(dm *vecmath.Matrix) (*vecmath.CondensedMatrix, error) {
	n := dm.Rows()
	if n == 0 || dm.Cols() != n {
		return nil, fmt.Errorf("cluster: distance matrix must be square and non-empty, got %dx%d", dm.Rows(), dm.Cols())
	}
	if !dm.IsSymmetric(1e-9) {
		return nil, errors.New("cluster: distance matrix is not symmetric")
	}
	for i := 0; i < n; i++ {
		if v := dm.At(i, i); v < 0 || math.IsNaN(v) {
			return nil, fmt.Errorf("cluster: invalid distance %v at (%d,%d)", v, i, i)
		}
	}
	return vecmath.CondensedFromDense(dm)
}

// fromCondensed is the agglomeration core. When owned is true the
// input matrix becomes the working matrix directly (the caller
// guarantees nothing else holds it); otherwise it is cloned first.
func fromCondensed(cm *vecmath.CondensedMatrix, l Linkage, opt Options, owned bool) (*Dendrogram, error) {
	ctx := opt.Ctx
	if ctx == nil {
		ctx = context.Background()
	}
	n := cm.N()
	d := &Dendrogram{n: n, linkage: l, merges: make([]Merge, 0, n-1)}
	if n == 1 {
		return d, nil
	}
	algo, err := opt.effectiveAlgorithm(n)
	if err != nil {
		return nil, err
	}
	workers := par.Resolve(opt.Workers)
	o := obs.Or(opt.Obs)
	sp := o.StartSpan("cluster.linkage",
		obs.KV("n", n), obs.KV("linkage", l.String()), obs.KV("workers", workers),
		obs.KV("algorithm", algo.String()))
	defer sp.End()
	var mergeHist *obs.Histogram
	if o.Active() {
		mergeHist = o.Metrics().Histogram("cluster.merge_distance", 0.25, 0.5, 1, 2, 4, 8, 16)
		o.Metrics().Counter("cluster.linkage.runs").Add(1)
	}
	mergeEvents := opt.MergeEvents || o.Detail()

	// Working pairwise distances between *active* clusters, indexed by
	// slot in [0, n); slot i initially holds leaf i. After a merge the
	// merged cluster reuses the lower slot and the higher slot is
	// deactivated. Row tails validate independently, so the
	// validation/Ward-squaring pass shards cleanly; rowErr collects at
	// most one error per row.
	w := cm
	if !owned {
		w = cm.Clone()
	}
	rowErr := make([]error, n)
	if err := par.ForCtx(ctx, workers, n-1, func(start, end int) {
		for i := start; i < end; i++ {
			row := w.RowTail(i)
			for t, v := range row {
				if v < 0 || math.IsNaN(v) {
					rowErr[i] = fmt.Errorf("cluster: invalid distance %v at (%d,%d)", v, i, i+1+t)
					break
				}
				if l == Ward {
					row[t] = v * v
				}
			}
		}
	}); err != nil {
		return nil, fmt.Errorf("cluster: building working distances: %w", err)
	}
	for _, err := range rowErr {
		if err != nil {
			return nil, err
		}
	}
	// Long agglomerations advertise a coarse completion fraction so a
	// large-n run is visible on /metrics instead of a silent hang.
	var progGauge *obs.Gauge
	if o.Active() {
		progGauge = o.Metrics().Gauge("cluster.progress")
		progGauge.Set(0)
	}
	if algo == AlgoNNChain {
		var progress func(done, total int)
		if progGauge != nil {
			progress = func(done, total int) { progGauge.Set(float64(done) / float64(total)) }
		}
		if err := nnChainAgglomerate(ctx, w, l, d, progress); err != nil {
			return nil, err
		}
		for step, mg := range d.merges {
			mergeHist.Observe(mg.Distance)
			if mergeEvents {
				sp.Event("cluster.merge", obs.KV("step", step), obs.KV("a", mg.A), obs.KV("b", mg.B),
					obs.KV("distance", mg.Distance), obs.KV("size", mg.Size))
			}
		}
		progGauge.Set(1)
		return d, nil
	}
	active := make([]bool, n)
	id := make([]int, n)   // cluster id held by each slot
	size := make([]int, n) // leaf count per slot
	for i := range active {
		active[i] = true
		id[i] = i
		size[i] = 1
	}

	// Row bands are fixed for the whole agglomeration; scans ignore
	// deactivated slots, so the bands never need rebalancing to stay
	// correct. The scan body is bound once and reused by every merge
	// step's fan-out — per-step state flows through active/cands, not
	// through fresh closures.
	chunks := par.Split(n, workers)
	cands := make([]pairCand, len(chunks))
	scan := func(cStart, cEnd int) {
		for c := cStart; c < cEnd; c++ {
			best := pairCand{i: -1, j: -1, d: math.Inf(1)}
			for i := chunks[c].Start; i < chunks[c].End; i++ {
				if !active[i] {
					continue
				}
				// Row i's tail is contiguous: entry t is pair
				// (i, i+1+t), scanned in exactly the dense row-major
				// order, so the first-minimal tie-break is unchanged.
				row := w.RowTail(i)
				for t, dv := range row {
					if !active[i+1+t] {
						continue
					}
					if dv < best.d {
						best = pairCand{i: i, j: i + 1 + t, d: dv}
					}
				}
			}
			cands[c] = best
		}
	}
	nextID := n
	progEvery := progressStride(n - 1)
	for step := 0; step < n-1; step++ {
		// The agglomeration cancels between merge steps: each step is
		// O(n·workers) work, so this is the natural checkpoint spacing.
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("cluster: linkage cancelled at step %d of %d: %w", step, n-1, err)
		}
		// Find the closest active pair. Each worker scans a
		// contiguous band of rows and keeps the first strictly
		// minimal pair it sees; merging the per-worker candidates in
		// band order reproduces the serial row-major tie-break
		// exactly, because a later band can only win with a strictly
		// smaller distance.
		par.For(workers, len(chunks), scan)
		bi, bj, best := -1, -1, math.Inf(1)
		for _, c := range cands {
			if c.i >= 0 && c.d < best {
				bi, bj, best = c.i, c.j, c.d
			}
		}
		// Update distances from the merged cluster (slot bi) to every
		// other active cluster via Lance–Williams.
		mergeUpdateCondensed(l, w, active, size, bi, bj)
		height := best
		if l == Ward {
			height = math.Sqrt(best)
		}
		a, b := id[bi], id[bj]
		if a > b {
			a, b = b, a
		}
		d.merges = append(d.merges, Merge{A: a, B: b, Distance: height, Size: size[bi] + size[bj]})
		mergeHist.Observe(height)
		if mergeEvents {
			sp.Event("cluster.merge", obs.KV("step", step), obs.KV("a", a), obs.KV("b", b),
				obs.KV("distance", height), obs.KV("size", size[bi]+size[bj]))
		}
		size[bi] += size[bj]
		id[bi] = nextID
		nextID++
		active[bj] = false
		if progGauge != nil && (step+1)%progEvery == 0 {
			progGauge.Set(float64(step+1) / float64(n-1))
		}
	}
	progGauge.Set(1)
	return d, nil
}

// progressStride spaces progress reports over total units of work:
// roughly 64 updates per run, never more often than every unit.
func progressStride(total int) int {
	stride := total / 64
	if stride < 1 {
		stride = 1
	}
	return stride
}

// Len returns the number of clustered points (leaves).
func (d *Dendrogram) Len() int { return d.n }

// Linkage returns the linkage the dendrogram was built with.
func (d *Dendrogram) Linkage() Linkage { return d.linkage }

// Merges returns the merge sequence. The slice is shared; callers
// must not modify it.
func (d *Dendrogram) Merges() []Merge { return d.merges }

// MergeDistances returns the n−1 merge heights in execution order.
func (d *Dendrogram) MergeDistances() []float64 {
	out := make([]float64, len(d.merges))
	for i, m := range d.merges {
		out[i] = m.Distance
	}
	return out
}
