package cluster

import (
	"testing"
	"testing/quick"

	"hmeans/internal/vecmath"
)

// Property: cuts are hierarchically nested — the k+1 clustering is a
// refinement of the k clustering (every k+1 cluster lies entirely
// inside one k cluster). This is the defining property of cutting one
// merge tree at different heights.
func TestCutsAreNested(t *testing.T) {
	for _, l := range []Linkage{Complete, Single, Average, Ward} {
		l := l
		f := func(seed uint64) bool {
			n := int(seed%10) + 3
			pts := randomPoints(n, 2, seed^0xc0ffee)
			d, err := NewDendrogram(pts, vecmath.Euclidean, l)
			if err != nil {
				return false
			}
			for k := 1; k < n; k++ {
				coarse, err := d.CutK(k)
				if err != nil {
					return false
				}
				fine, err := d.CutK(k + 1)
				if err != nil {
					return false
				}
				// Two leaves in the same fine cluster must share the
				// coarse cluster too.
				for i := 0; i < n; i++ {
					for j := i + 1; j < n; j++ {
						if fine.Labels[i] == fine.Labels[j] &&
							coarse.Labels[i] != coarse.Labels[j] {
							return false
						}
					}
				}
			}
			return true
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
			t.Fatalf("linkage %v: %v", l, err)
		}
	}
}

// Property: the number of merges applied at CutDistance is monotone
// non-increasing in K as the distance grows.
func TestKAtDistanceMonotone(t *testing.T) {
	f := func(seed uint64) bool {
		pts := randomPoints(int(seed%8)+3, 2, seed^0xdead)
		d, err := NewDendrogram(pts, vecmath.Euclidean, Complete)
		if err != nil {
			return false
		}
		heights := d.MergeDistances()
		maxH := heights[len(heights)-1]
		prevK := d.Len() + 1
		steps := 20
		for s := 0; s <= steps; s++ {
			dist := maxH * float64(s) / float64(steps)
			if s == steps {
				dist = maxH // avoid float rounding below the final merge
			}
			k := d.KAtDistance(dist)
			if k > prevK {
				return false
			}
			prevK = k
		}
		return prevK == 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: CopheneticDistances has exactly n(n-1)/2 entries and the
// maximum equals the final merge height.
func TestCopheneticShape(t *testing.T) {
	f := func(seed uint64) bool {
		n := int(seed%9) + 2
		pts := randomPoints(n, 3, seed^0xf00d)
		d, err := NewDendrogram(pts, vecmath.Euclidean, Complete)
		if err != nil {
			return false
		}
		coph := d.CopheneticDistances()
		if len(coph) != n*(n-1)/2 {
			return false
		}
		maxC := 0.0
		for _, c := range coph {
			if c > maxC {
				maxC = c
			}
		}
		heights := d.MergeDistances()
		return maxC == heights[len(heights)-1]
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
