package cluster

import (
	"testing"

	"hmeans/internal/obs"
	"hmeans/internal/vecmath"
)

func obsPoints() []vecmath.Vector {
	return []vecmath.Vector{{0, 0}, {0, 1}, {4, 0}, {4, 1}, {10, 10}}
}

// TestLinkageSpanAndHistogram checks the default instrumentation of a
// clustering run: one cluster.linkage span, every merge height folded
// into the distance histogram, and — by default — no per-merge events.
func TestLinkageSpanAndHistogram(t *testing.T) {
	col := obs.NewCollector()
	o := obs.New(col)
	d, err := NewDendrogramOpts(obsPoints(), vecmath.Euclidean, Complete, Options{Obs: o})
	if err != nil {
		t.Fatal(err)
	}
	tr := col.Trace()
	var spans, mergeEvents int
	for _, s := range tr.Spans {
		if s.Name == "cluster.linkage" {
			spans++
		}
	}
	for _, e := range tr.Events {
		if e.Name == "cluster.merge" {
			mergeEvents++
		}
	}
	if spans != 1 {
		t.Fatalf("cluster.linkage spans = %d", spans)
	}
	if mergeEvents != 0 {
		t.Fatalf("merge events leaked without MergeEvents: %d", mergeEvents)
	}
	h := o.Metrics().Histogram("cluster.merge_distance")
	if int(h.Count()) != len(d.Merges()) {
		t.Fatalf("histogram count = %d, merges = %d", h.Count(), len(d.Merges()))
	}
	var sum float64
	for _, m := range d.Merges() {
		sum += m.Distance
	}
	if got := h.Sum(); got < sum*0.999 || got > sum*1.001 {
		t.Fatalf("histogram sum = %v, merge-height sum = %v", got, sum)
	}
}

// TestMergeEventsGated checks that Options.MergeEvents (and the
// observer detail toggle) turn on exactly one event per merge,
// carrying the same heights as the dendrogram.
func TestMergeEventsGated(t *testing.T) {
	for _, via := range []string{"option", "detail"} {
		col := obs.NewCollector()
		o := obs.New(col)
		opt := Options{Obs: o}
		if via == "option" {
			opt.MergeEvents = true
		} else {
			o.SetDetail(true)
		}
		d, err := NewDendrogramOpts(obsPoints(), vecmath.Euclidean, Complete, opt)
		if err != nil {
			t.Fatal(err)
		}
		var heights []float64
		for _, e := range col.Trace().Events {
			if e.Name != "cluster.merge" {
				continue
			}
			for _, a := range e.Attrs {
				if a.Key == "distance" {
					heights = append(heights, a.Val.(float64))
				}
			}
		}
		merges := d.Merges()
		if len(heights) != len(merges) {
			t.Fatalf("via %s: merge events = %d, merges = %d", via, len(heights), len(merges))
		}
		for i, m := range merges {
			if heights[i] != m.Distance {
				t.Fatalf("via %s: event %d height %v != merge height %v", via, i, heights[i], m.Distance)
			}
		}
	}
}

// TestInstrumentationPreservesMerges pins determinism: the merge
// sequence with a live observer (detail on, parallel scan) matches
// the bare serial run exactly.
func TestInstrumentationPreservesMerges(t *testing.T) {
	bare, err := NewDendrogram(obsPoints(), vecmath.Euclidean, Average)
	if err != nil {
		t.Fatal(err)
	}
	o := obs.New(obs.NewCollector())
	o.SetDetail(true)
	traced, err := NewDendrogramOpts(obsPoints(), vecmath.Euclidean, Average, Options{Workers: 4, Obs: o})
	if err != nil {
		t.Fatal(err)
	}
	bm, tm := bare.Merges(), traced.Merges()
	if len(bm) != len(tm) {
		t.Fatalf("merge counts differ: %d vs %d", len(bm), len(tm))
	}
	for i := range bm {
		if bm[i] != tm[i] {
			t.Fatalf("merge %d differs: %+v vs %+v", i, bm[i], tm[i])
		}
	}
}
