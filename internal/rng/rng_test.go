package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if av, bv := a.Uint64(), b.Uint64(); av != bv {
			t.Fatalf("streams diverged at step %d: %d != %d", i, av, bv)
		}
	}
}

func TestSeedsDiffer(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("different seeds produced %d identical outputs in 100 draws", same)
	}
}

func TestZeroSeedValid(t *testing.T) {
	r := New(0)
	seen := map[uint64]bool{}
	for i := 0; i < 100; i++ {
		seen[r.Uint64()] = true
	}
	if len(seen) < 99 {
		t.Fatalf("seed 0 stream looks degenerate: only %d distinct values in 100", len(seen))
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(7)
	for i := 0; i < 10000; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 out of range: %v", v)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	r := New(11)
	const n = 200000
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += r.Float64()
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.01 {
		t.Fatalf("Float64 mean = %v, want ~0.5", mean)
	}
}

func TestIntnBounds(t *testing.T) {
	r := New(3)
	counts := make([]int, 10)
	for i := 0; i < 100000; i++ {
		v := r.Intn(10)
		if v < 0 || v >= 10 {
			t.Fatalf("Intn(10) out of range: %d", v)
		}
		counts[v]++
	}
	for v, c := range counts {
		if c < 8000 || c > 12000 {
			t.Fatalf("Intn(10) value %d count %d is far from uniform", v, c)
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestNormFloat64Moments(t *testing.T) {
	r := New(5)
	const n = 200000
	var sum, sumSq float64
	for i := 0; i < n; i++ {
		v := r.NormFloat64()
		sum += v
		sumSq += v * v
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Fatalf("normal mean = %v, want ~0", mean)
	}
	if math.Abs(variance-1) > 0.03 {
		t.Fatalf("normal variance = %v, want ~1", variance)
	}
}

func TestPermIsPermutation(t *testing.T) {
	f := func(seed uint64, nRaw uint8) bool {
		n := int(nRaw%64) + 1
		p := New(seed).Perm(n)
		if len(p) != n {
			return false
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestShuffleKeepsMultiset(t *testing.T) {
	r := New(9)
	xs := []int{1, 2, 3, 4, 5, 6, 7, 8}
	sum := 0
	for _, v := range xs {
		sum += v
	}
	r.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] })
	got := 0
	for _, v := range xs {
		got += v
	}
	if got != sum {
		t.Fatalf("shuffle changed the multiset: sum %d -> %d", sum, got)
	}
}

func TestSplitIndependence(t *testing.T) {
	parent := New(123)
	child := parent.Split()
	// Child must be deterministic given the parent state...
	parent2 := New(123)
	child2 := parent2.Split()
	for i := 0; i < 100; i++ {
		if child.Uint64() != child2.Uint64() {
			t.Fatal("Split is not deterministic")
		}
	}
	// ...and distinct from a fresh parent stream.
	a, b := New(123), New(123).Split()
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("child stream mirrors parent: %d collisions", same)
	}
}

func BenchmarkUint64(b *testing.B) {
	b.ReportAllocs()
	r := New(1)
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink = r.Uint64()
	}
	_ = sink
}

func BenchmarkNormFloat64(b *testing.B) {
	b.ReportAllocs()
	r := New(1)
	var sink float64
	for i := 0; i < b.N; i++ {
		sink = r.NormFloat64()
	}
	_ = sink
}
