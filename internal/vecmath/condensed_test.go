package vecmath

import (
	"testing"

	"hmeans/internal/rng"
)

func condensedTestPoints(n, dim int, seed uint64) []Vector {
	r := rng.New(seed)
	pts := make([]Vector, n)
	for i := range pts {
		pts[i] = NewVector(dim)
		for j := range pts[i] {
			pts[i][j] = r.NormFloat64()
		}
	}
	return pts
}

func TestCondensedIndexing(t *testing.T) {
	for _, n := range []int{1, 2, 3, 7, 16} {
		c := NewCondensedMatrix(n)
		if len(c.Data()) != n*(n-1)/2 {
			t.Fatalf("n=%d: %d entries, want %d", n, len(c.Data()), n*(n-1)/2)
		}
		// Offsets must enumerate the strict upper triangle row-major.
		want := 0
		for i := 0; i < n; i++ {
			if c.Index0(i) != want && i < n-1 {
				t.Fatalf("n=%d: Index0(%d) = %d, want %d", n, i, c.Index0(i), want)
			}
			for j := i + 1; j < n; j++ {
				if got := c.Index(i, j); got != want {
					t.Fatalf("n=%d: Index(%d,%d) = %d, want %d", n, i, j, got, want)
				}
				if got := c.Index(j, i); got != want {
					t.Fatalf("n=%d: Index(%d,%d) (swapped) = %d, want %d", n, j, i, got, want)
				}
				want++
			}
		}
	}
}

func TestCondensedAtSetDiagonalAndMirror(t *testing.T) {
	c := NewCondensedMatrix(5)
	c.Set(1, 3, 2.5)
	if c.At(1, 3) != 2.5 || c.At(3, 1) != 2.5 {
		t.Fatalf("mirror read failed: %v / %v", c.At(1, 3), c.At(3, 1))
	}
	c.Set(3, 1, 7.0) // writing the mirror hits the same slot
	if c.At(1, 3) != 7.0 {
		t.Fatalf("mirror write failed: %v", c.At(1, 3))
	}
	for i := 0; i < 5; i++ {
		if c.At(i, i) != 0 {
			t.Fatalf("diagonal At(%d,%d) = %v, want 0", i, i, c.At(i, i))
		}
	}
	tail := c.RowTail(1)
	if len(tail) != 3 {
		t.Fatalf("RowTail(1) length %d, want 3", len(tail))
	}
	tail[1] = 9.5 // entry t is pair (1, 1+1+t), so t=1 is (1, 3)
	if c.At(1, 3) != 9.5 {
		t.Fatal("RowTail does not alias the matrix storage")
	}
}

func TestCondensedPanics(t *testing.T) {
	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		f()
	}
	mustPanic("NewCondensedMatrix(0)", func() { NewCondensedMatrix(0) })
	c := NewCondensedMatrix(4)
	mustPanic("Index diagonal", func() { c.Index(2, 2) })
	mustPanic("Index out of range", func() { c.Index(0, 4) })
	mustPanic("At out of range diagonal", func() { c.At(5, 5) })
	mustPanic("Index0 out of range", func() { c.Index0(4) })
}

func TestCondensedDenseRoundTrip(t *testing.T) {
	pts := condensedTestPoints(9, 3, 4)
	dm := DistanceMatrix(Euclidean, pts)
	cm, err := CondensedFromDense(dm)
	if err != nil {
		t.Fatal(err)
	}
	back := cm.Dense()
	for i := 0; i < 9; i++ {
		for j := 0; j < 9; j++ {
			if back.At(i, j) != dm.At(i, j) {
				t.Fatalf("round trip differs at (%d,%d)", i, j)
			}
		}
	}
	clone := cm.Clone()
	clone.Set(0, 1, -1)
	if cm.At(0, 1) == -1 {
		t.Fatal("Clone shares storage with the original")
	}
	if _, err := CondensedFromDense(NewMatrix(2, 3)); err == nil {
		t.Fatal("CondensedFromDense accepted a non-square matrix")
	}
}

// TestCondensedDistanceMatrixMatchesDense proves the condensed build
// produces bit-identical distances to the dense build for every
// metric and worker count.
func TestCondensedDistanceMatrixMatchesDense(t *testing.T) {
	pts := condensedTestPoints(23, 4, 8)
	for _, m := range []Metric{Euclidean, Manhattan, Chebyshev, Cosine} {
		dense := DistanceMatrix(m, pts)
		for _, workers := range []int{1, 2, 8} {
			cm := CondensedDistanceMatrixP(m, pts, workers)
			for i := 0; i < len(pts); i++ {
				for j := i + 1; j < len(pts); j++ {
					if cm.At(i, j) != dense.At(i, j) {
						t.Fatalf("%v workers=%d: (%d,%d) %v != %v",
							m, workers, i, j, cm.At(i, j), dense.At(i, j))
					}
				}
			}
		}
	}
}

// TestKernelMatchesDistance proves the hoisted metric kernels compute
// exactly what the dispatching Distance computes.
func TestKernelMatchesDistance(t *testing.T) {
	pts := condensedTestPoints(6, 5, 15)
	for _, m := range []Metric{Euclidean, Manhattan, Chebyshev, Cosine} {
		kern := m.Kernel()
		for i := range pts {
			for j := range pts {
				if got, want := kern(pts[i], pts[j]), Distance(m, pts[i], pts[j]); got != want {
					t.Fatalf("%v kernel(%d,%d) = %v, want %v", m, i, j, got, want)
				}
			}
		}
	}
}

// TestInPlaceOpsMatchAllocating proves the in-place vector ops are
// bit-identical to their allocating counterparts.
func TestInPlaceOpsMatchAllocating(t *testing.T) {
	r := rng.New(3)
	v, w := NewVector(17), NewVector(17)
	for i := range v {
		v[i], w[i] = r.NormFloat64(), r.NormFloat64()
	}
	check := func(name string, got, want Vector) {
		t.Helper()
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("%s differs at %d: %v != %v", name, i, got[i], want[i])
			}
		}
	}
	add := v.Clone()
	add.AddInPlace(w)
	check("AddInPlace", add, v.Add(w))
	sub := v.Clone()
	sub.SubInPlace(w)
	check("SubInPlace", sub, v.Sub(w))
	sc := v.Clone()
	sc.ScaleInPlace(1 / 3.0)
	check("ScaleInPlace", sc, v.Scale(1/3.0))

	if avg := testing.AllocsPerRun(100, func() {
		add.AddInPlace(w)
		sub.SubInPlace(w)
		sc.ScaleInPlace(0.99)
	}); avg != 0 {
		t.Errorf("in-place ops: %v allocs/op, want 0", avg)
	}
}
