package vecmath

import (
	"errors"
	"math"
	"testing"
	"testing/quick"

	"hmeans/internal/rng"
)

func TestSymmetricEigenKnown(t *testing.T) {
	// Eigenvalues of [[2,1],[1,2]] are 3 and 1.
	a := FromRows([][]float64{{2, 1}, {1, 2}})
	e, err := SymmetricEigen(a)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(e.Values[0], 3, 1e-9) || !almostEqual(e.Values[1], 1, 1e-9) {
		t.Fatalf("eigenvalues = %v, want [3 1]", e.Values)
	}
	// Eigenvector for λ=3 is (1,1)/√2 up to sign.
	v := e.Vectors[0]
	if !almostEqual(math.Abs(v[0]), 1/math.Sqrt2, 1e-9) || !almostEqual(math.Abs(v[1]), 1/math.Sqrt2, 1e-9) {
		t.Fatalf("leading eigenvector = %v", v)
	}
}

func TestSymmetricEigenDiagonal(t *testing.T) {
	a := FromRows([][]float64{{5, 0, 0}, {0, -2, 0}, {0, 0, 3}})
	e, err := SymmetricEigen(a)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{5, 3, -2}
	for i, w := range want {
		if !almostEqual(e.Values[i], w, 1e-12) {
			t.Fatalf("eigenvalues = %v, want %v", e.Values, want)
		}
	}
}

func TestSymmetricEigenRejectsAsymmetric(t *testing.T) {
	a := FromRows([][]float64{{1, 2}, {3, 4}})
	if _, err := SymmetricEigen(a); !errors.Is(err, ErrNotSymmetric) {
		t.Fatalf("err = %v, want ErrNotSymmetric", err)
	}
}

// randomSymmetric builds a random symmetric matrix with a fixed seed.
func randomSymmetric(n int, seed uint64) *Matrix {
	r := rng.New(seed)
	a := NewMatrix(n, n)
	for i := 0; i < n; i++ {
		for j := i; j < n; j++ {
			v := r.NormFloat64() * 3
			a.Set(i, j, v)
			a.Set(j, i, v)
		}
	}
	return a
}

func TestEigenReconstruction(t *testing.T) {
	// A = V diag(λ) Vᵀ must reconstruct the original matrix.
	for _, n := range []int{2, 3, 5, 8, 12} {
		a := randomSymmetric(n, uint64(n))
		e, err := SymmetricEigen(a)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				sum := 0.0
				for k := 0; k < n; k++ {
					sum += e.Values[k] * e.Vectors[k][i] * e.Vectors[k][j]
				}
				if !almostEqual(sum, a.At(i, j), 1e-7) {
					t.Fatalf("n=%d: reconstruction (%d,%d) = %v, want %v", n, i, j, sum, a.At(i, j))
				}
			}
		}
	}
}

func TestEigenOrthonormal(t *testing.T) {
	a := randomSymmetric(7, 99)
	e, err := SymmetricEigen(a)
	if err != nil {
		t.Fatal(err)
	}
	for i := range e.Vectors {
		for j := range e.Vectors {
			dot := e.Vectors[i].Dot(e.Vectors[j])
			want := 0.0
			if i == j {
				want = 1
			}
			if !almostEqual(dot, want, 1e-8) {
				t.Fatalf("v%d·v%d = %v, want %v", i, j, dot, want)
			}
		}
	}
}

// Property: trace(A) = sum of eigenvalues.
func TestEigenTraceInvariant(t *testing.T) {
	f := func(seed uint64) bool {
		n := int(seed%6) + 2
		a := randomSymmetric(n, seed)
		e, err := SymmetricEigen(a)
		if err != nil {
			return false
		}
		trace, sum := 0.0, 0.0
		for i := 0; i < n; i++ {
			trace += a.At(i, i)
			sum += e.Values[i]
		}
		return almostEqual(trace, sum, 1e-8)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: eigenvalues come out sorted in descending order.
func TestEigenSorted(t *testing.T) {
	f := func(seed uint64) bool {
		a := randomSymmetric(int(seed%5)+2, seed^0xabcdef)
		e, err := SymmetricEigen(a)
		if err != nil {
			return false
		}
		for i := 1; i < len(e.Values); i++ {
			if e.Values[i] > e.Values[i-1]+1e-12 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
