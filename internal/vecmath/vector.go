// Package vecmath provides the small dense linear-algebra kernel the
// pipeline needs: vectors, row-major matrices, distance metrics, a
// symmetric eigendecomposition (cyclic Jacobi) for PCA, and a pivoted
// Gaussian linear solver. It deliberately implements only what the
// library uses, with explicit dimension checks that panic — dimension
// mismatches here are always programmer errors, never data errors.
package vecmath

import (
	"fmt"
	"math"
)

// Vector is a dense float64 vector.
type Vector []float64

// NewVector returns a zero vector of length n.
func NewVector(n int) Vector { return make(Vector, n) }

// Clone returns an independent copy of v.
func (v Vector) Clone() Vector {
	out := make(Vector, len(v))
	copy(out, v)
	return out
}

// Add returns v + w.
func (v Vector) Add(w Vector) Vector {
	assertSameLen(v, w)
	out := make(Vector, len(v))
	for i := range v {
		out[i] = v[i] + w[i]
	}
	return out
}

// Sub returns v - w.
func (v Vector) Sub(w Vector) Vector {
	assertSameLen(v, w)
	out := make(Vector, len(v))
	for i := range v {
		out[i] = v[i] - w[i]
	}
	return out
}

// Scale returns c * v.
func (v Vector) Scale(c float64) Vector {
	out := make(Vector, len(v))
	for i := range v {
		out[i] = c * v[i]
	}
	return out
}

// AXPYInPlace performs v += a*w without allocating; it is the hot
// operation of SOM weight updates.
func (v Vector) AXPYInPlace(a float64, w Vector) {
	assertSameLen(v, w)
	for i := range v {
		v[i] += a * w[i]
	}
}

// AddInPlace performs v += w without allocating. Element order and
// arithmetic match Add exactly.
func (v Vector) AddInPlace(w Vector) {
	assertSameLen(v, w)
	for i := range v {
		v[i] += w[i]
	}
}

// SubInPlace performs v -= w without allocating. Element order and
// arithmetic match Sub exactly.
func (v Vector) SubInPlace(w Vector) {
	assertSameLen(v, w)
	for i := range v {
		v[i] -= w[i]
	}
}

// ScaleInPlace performs v = c*v without allocating. Each element is
// computed as c*v[i], the same expression Scale uses, so the results
// are bit-identical.
func (v Vector) ScaleInPlace(c float64) {
	for i := range v {
		v[i] = c * v[i]
	}
}

// Dot returns the inner product of v and w.
func (v Vector) Dot(w Vector) float64 {
	assertSameLen(v, w)
	sum := 0.0
	for i := range v {
		sum += v[i] * w[i]
	}
	return sum
}

// Norm returns the Euclidean (L2) norm of v.
func (v Vector) Norm() float64 { return math.Sqrt(v.Dot(v)) }

// Normalize returns v scaled to unit L2 norm. A zero vector is
// returned unchanged.
func (v Vector) Normalize() Vector {
	n := v.Norm()
	if n == 0 {
		return v.Clone()
	}
	return v.Scale(1 / n)
}

func assertSameLen(v, w Vector) {
	if len(v) != len(w) {
		panic(fmt.Sprintf("vecmath: dimension mismatch %d vs %d", len(v), len(w)))
	}
}
