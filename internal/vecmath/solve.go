package vecmath

import (
	"errors"
	"math"
)

// ErrSingular is returned when a linear system has no unique solution.
var ErrSingular = errors.New("vecmath: singular matrix")

// Solve returns x such that a·x = b, using Gaussian elimination with
// partial pivoting. a must be square and is not modified. It is used
// by the calibration fitter's least-squares normal equations.
func Solve(a *Matrix, b Vector) (Vector, error) {
	n := a.Rows()
	if a.Cols() != n {
		return nil, errors.New("vecmath: Solve requires a square matrix")
	}
	if len(b) != n {
		return nil, errors.New("vecmath: Solve dimension mismatch")
	}
	// Augmented working copies.
	w := a.Clone()
	x := b.Clone()
	for col := 0; col < n; col++ {
		// Partial pivot: pick the largest |entry| in this column.
		pivot := col
		for r := col + 1; r < n; r++ {
			if math.Abs(w.At(r, col)) > math.Abs(w.At(pivot, col)) {
				pivot = r
			}
		}
		if math.Abs(w.At(pivot, col)) < 1e-14 {
			return nil, ErrSingular
		}
		if pivot != col {
			for j := 0; j < n; j++ {
				tmp := w.At(col, j)
				w.Set(col, j, w.At(pivot, j))
				w.Set(pivot, j, tmp)
			}
			x[col], x[pivot] = x[pivot], x[col]
		}
		// Eliminate below.
		for r := col + 1; r < n; r++ {
			f := w.At(r, col) / w.At(col, col)
			if f == 0 {
				continue
			}
			for j := col; j < n; j++ {
				w.Set(r, j, w.At(r, j)-f*w.At(col, j))
			}
			x[r] -= f * x[col]
		}
	}
	// Back substitution.
	for r := n - 1; r >= 0; r-- {
		sum := x[r]
		for j := r + 1; j < n; j++ {
			sum -= w.At(r, j) * x[j]
		}
		x[r] = sum / w.At(r, r)
	}
	return x, nil
}

// LeastSquares returns x minimizing ‖a·x − b‖₂ via the normal
// equations (aᵀa)x = aᵀb. a has one row per observation; the system
// must be over- or exactly determined with full column rank.
func LeastSquares(a *Matrix, b Vector) (Vector, error) {
	if a.Rows() != len(b) {
		return nil, errors.New("vecmath: LeastSquares dimension mismatch")
	}
	at := a.Transpose()
	return Solve(at.Mul(a), at.MulVec(b))
}
