package vecmath

import (
	"errors"
	"math"
	"sort"
)

// ErrNotSymmetric is returned when an eigendecomposition is requested
// for a matrix that is not symmetric.
var ErrNotSymmetric = errors.New("vecmath: matrix is not symmetric")

// ErrNoConvergence is returned when an iterative routine exceeds its
// sweep budget without reaching tolerance.
var ErrNoConvergence = errors.New("vecmath: iteration did not converge")

// Eigen holds the eigendecomposition of a symmetric matrix: Values
// are eigenvalues in descending order, and Vectors[i] is the unit
// eigenvector paired with Values[i].
type Eigen struct {
	Values  []float64
	Vectors []Vector
}

// SymmetricEigen computes all eigenvalues and eigenvectors of the
// symmetric matrix a using the cyclic Jacobi method. The input is not
// modified. Jacobi is quadratic per sweep but the pipeline only ever
// decomposes covariance matrices of at most a few hundred features,
// where its unconditional stability beats fancier algorithms.
func SymmetricEigen(a *Matrix) (*Eigen, error) {
	const maxSweeps = 100
	if !a.IsSymmetric(1e-9) {
		return nil, ErrNotSymmetric
	}
	n := a.Rows()
	w := a.Clone()   // working copy, driven to diagonal form
	v := Identity(n) // accumulated rotations: columns are eigenvectors
	// Convergence is judged relative to the matrix scale: the sum of
	// squared off-diagonals must fall below 1e-22 of the squared
	// Frobenius norm (or be exactly zero for a diagonal input).
	frob2 := 0.0
	for _, x := range w.data {
		frob2 += x * x
	}
	thresh := 1e-22 * frob2
	for sweep := 0; sweep < maxSweeps; sweep++ {
		off := 0.0
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				off += w.At(i, j) * w.At(i, j)
			}
		}
		if off <= thresh {
			return collectEigen(w, v), nil
		}
		for p := 0; p < n-1; p++ {
			for q := p + 1; q < n; q++ {
				apq := w.At(p, q)
				if apq == 0 {
					continue
				}
				// Classical Jacobi rotation annihilating w[p][q].
				theta := (w.At(q, q) - w.At(p, p)) / (2 * apq)
				t := math.Copysign(1, theta) / (math.Abs(theta) + math.Sqrt(theta*theta+1))
				c := 1 / math.Sqrt(t*t+1)
				s := t * c
				rotate(w, v, p, q, c, s)
			}
		}
	}
	return nil, ErrNoConvergence
}

// rotate applies the Jacobi rotation G(p,q,θ) as w = GᵀwG and
// accumulates v = vG.
func rotate(w, v *Matrix, p, q int, c, s float64) {
	n := w.Rows()
	for k := 0; k < n; k++ {
		wkp, wkq := w.At(k, p), w.At(k, q)
		w.Set(k, p, c*wkp-s*wkq)
		w.Set(k, q, s*wkp+c*wkq)
	}
	for k := 0; k < n; k++ {
		wpk, wqk := w.At(p, k), w.At(q, k)
		w.Set(p, k, c*wpk-s*wqk)
		w.Set(q, k, s*wpk+c*wqk)
	}
	for k := 0; k < n; k++ {
		vkp, vkq := v.At(k, p), v.At(k, q)
		v.Set(k, p, c*vkp-s*vkq)
		v.Set(k, q, s*vkp+c*vkq)
	}
}

func collectEigen(w, v *Matrix) *Eigen {
	n := w.Rows()
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool { return w.At(order[a], order[a]) > w.At(order[b], order[b]) })
	e := &Eigen{Values: make([]float64, n), Vectors: make([]Vector, n)}
	for rank, idx := range order {
		e.Values[rank] = w.At(idx, idx)
		e.Vectors[rank] = v.Col(idx)
	}
	return e
}
