package vecmath

import (
	"fmt"
	"math"
)

// Matrix is a dense row-major matrix.
type Matrix struct {
	rows, cols int
	data       []float64
}

// NewMatrix returns a zero matrix with the given shape. It panics on
// non-positive dimensions.
func NewMatrix(rows, cols int) *Matrix {
	if rows <= 0 || cols <= 0 {
		panic(fmt.Sprintf("vecmath: invalid matrix shape %dx%d", rows, cols))
	}
	return &Matrix{rows: rows, cols: cols, data: make([]float64, rows*cols)}
}

// FromRows builds a matrix from row slices, which must be non-empty
// and rectangular. The data is copied.
func FromRows(rows [][]float64) *Matrix {
	if len(rows) == 0 || len(rows[0]) == 0 {
		panic("vecmath: FromRows requires non-empty input")
	}
	m := NewMatrix(len(rows), len(rows[0]))
	for i, r := range rows {
		if len(r) != m.cols {
			panic(fmt.Sprintf("vecmath: ragged input row %d: %d != %d", i, len(r), m.cols))
		}
		copy(m.data[i*m.cols:(i+1)*m.cols], r)
	}
	return m
}

// Identity returns the n×n identity matrix.
func Identity(n int) *Matrix {
	m := NewMatrix(n, n)
	for i := 0; i < n; i++ {
		m.Set(i, i, 1)
	}
	return m
}

// Rows returns the number of rows.
func (m *Matrix) Rows() int { return m.rows }

// Cols returns the number of columns.
func (m *Matrix) Cols() int { return m.cols }

// At returns the element at row i, column j.
func (m *Matrix) At(i, j int) float64 { return m.data[i*m.cols+j] }

// Set assigns the element at row i, column j.
func (m *Matrix) Set(i, j int, v float64) { m.data[i*m.cols+j] = v }

// Row returns row i as a Vector view (not a copy).
func (m *Matrix) Row(i int) Vector { return Vector(m.data[i*m.cols : (i+1)*m.cols]) }

// Col returns column j as a new Vector.
func (m *Matrix) Col(j int) Vector {
	out := make(Vector, m.rows)
	for i := 0; i < m.rows; i++ {
		out[i] = m.At(i, j)
	}
	return out
}

// Clone returns an independent deep copy.
func (m *Matrix) Clone() *Matrix {
	out := NewMatrix(m.rows, m.cols)
	copy(out.data, m.data)
	return out
}

// Transpose returns mᵀ.
func (m *Matrix) Transpose() *Matrix {
	out := NewMatrix(m.cols, m.rows)
	for i := 0; i < m.rows; i++ {
		for j := 0; j < m.cols; j++ {
			out.Set(j, i, m.At(i, j))
		}
	}
	return out
}

// Mul returns m × other. It panics if the inner dimensions differ.
func (m *Matrix) Mul(other *Matrix) *Matrix {
	if m.cols != other.rows {
		panic(fmt.Sprintf("vecmath: cannot multiply %dx%d by %dx%d", m.rows, m.cols, other.rows, other.cols))
	}
	out := NewMatrix(m.rows, other.cols)
	for i := 0; i < m.rows; i++ {
		mrow := m.data[i*m.cols : (i+1)*m.cols]
		orow := out.data[i*other.cols : (i+1)*other.cols]
		for k, mv := range mrow {
			if mv == 0 {
				continue
			}
			krow := other.data[k*other.cols : (k+1)*other.cols]
			for j, kv := range krow {
				orow[j] += mv * kv
			}
		}
	}
	return out
}

// MulVec returns m × v as a Vector.
func (m *Matrix) MulVec(v Vector) Vector {
	if m.cols != len(v) {
		panic(fmt.Sprintf("vecmath: cannot multiply %dx%d by vector of length %d", m.rows, m.cols, len(v)))
	}
	out := make(Vector, m.rows)
	for i := 0; i < m.rows; i++ {
		out[i] = m.Row(i).Dot(v)
	}
	return out
}

// IsSymmetric reports whether m is square and symmetric within tol.
func (m *Matrix) IsSymmetric(tol float64) bool {
	if m.rows != m.cols {
		return false
	}
	for i := 0; i < m.rows; i++ {
		for j := i + 1; j < m.cols; j++ {
			if math.Abs(m.At(i, j)-m.At(j, i)) > tol {
				return false
			}
		}
	}
	return true
}

// CovarianceMatrix returns the population covariance matrix of the
// observation matrix obs, whose rows are observations and columns are
// features, along with the column means.
func CovarianceMatrix(obs *Matrix) (cov *Matrix, means Vector) {
	n, d := obs.rows, obs.cols
	means = make(Vector, d)
	for j := 0; j < d; j++ {
		sum := 0.0
		for i := 0; i < n; i++ {
			sum += obs.At(i, j)
		}
		means[j] = sum / float64(n)
	}
	cov = NewMatrix(d, d)
	for a := 0; a < d; a++ {
		for b := a; b < d; b++ {
			sum := 0.0
			for i := 0; i < n; i++ {
				sum += (obs.At(i, a) - means[a]) * (obs.At(i, b) - means[b])
			}
			c := sum / float64(n)
			cov.Set(a, b, c)
			cov.Set(b, a, c)
		}
	}
	return cov, means
}
