package vecmath

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, tol float64) bool {
	if a == b {
		return true
	}
	return math.Abs(a-b) <= tol*math.Max(1, math.Max(math.Abs(a), math.Abs(b)))
}

func cleanVec(raw []float64, n int) Vector {
	v := make(Vector, n)
	for i := 0; i < n && i < len(raw); i++ {
		x := raw[i]
		if math.IsNaN(x) || math.IsInf(x, 0) {
			x = 0
		}
		v[i] = math.Mod(x, 1000)
	}
	return v
}

func TestVectorArithmetic(t *testing.T) {
	v := Vector{1, 2, 3}
	w := Vector{4, 5, 6}
	if got := v.Add(w); got[0] != 5 || got[1] != 7 || got[2] != 9 {
		t.Errorf("Add = %v", got)
	}
	if got := v.Sub(w); got[0] != -3 || got[1] != -3 || got[2] != -3 {
		t.Errorf("Sub = %v", got)
	}
	if got := v.Scale(2); got[0] != 2 || got[1] != 4 || got[2] != 6 {
		t.Errorf("Scale = %v", got)
	}
	if got := v.Dot(w); got != 32 {
		t.Errorf("Dot = %v, want 32", got)
	}
}

func TestVectorNorm(t *testing.T) {
	v := Vector{3, 4}
	if v.Norm() != 5 {
		t.Errorf("Norm = %v, want 5", v.Norm())
	}
	u := v.Normalize()
	if !almostEqual(u.Norm(), 1, 1e-12) {
		t.Errorf("Normalize norm = %v, want 1", u.Norm())
	}
	z := Vector{0, 0}
	if got := z.Normalize(); got[0] != 0 || got[1] != 0 {
		t.Errorf("Normalize(zero) = %v, want zero", got)
	}
}

func TestAXPYInPlace(t *testing.T) {
	v := Vector{1, 1}
	v.AXPYInPlace(2, Vector{3, 4})
	if v[0] != 7 || v[1] != 9 {
		t.Errorf("AXPY = %v, want [7 9]", v)
	}
}

func TestCloneIndependent(t *testing.T) {
	v := Vector{1, 2}
	c := v.Clone()
	c[0] = 99
	if v[0] != 1 {
		t.Error("Clone aliases original storage")
	}
}

func TestDimensionMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Add with mismatched lengths did not panic")
		}
	}()
	Vector{1}.Add(Vector{1, 2})
}

// Property: dot product is bilinear in its first argument.
func TestDotBilinear(t *testing.T) {
	f := func(rawA, rawB, rawC []float64, sRaw float64) bool {
		a := cleanVec(rawA, 5)
		b := cleanVec(rawB, 5)
		c := cleanVec(rawC, 5)
		s := math.Mod(sRaw, 10)
		if math.IsNaN(s) {
			s = 1
		}
		left := a.Scale(s).Add(b).Dot(c)
		right := s*a.Dot(c) + b.Dot(c)
		return almostEqual(left, right, 1e-6)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: Cauchy–Schwarz |v·w| <= |v||w|.
func TestCauchySchwarz(t *testing.T) {
	f := func(rawA, rawB []float64) bool {
		a := cleanVec(rawA, 6)
		b := cleanVec(rawB, 6)
		return math.Abs(a.Dot(b)) <= a.Norm()*b.Norm()+1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
