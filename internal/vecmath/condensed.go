package vecmath

import (
	"context"
	"fmt"

	"hmeans/internal/par"
)

// Float constrains the element type of condensed pairwise-distance
// storage: float64 is the default exact mode, float32 the opt-in
// half-memory mode for very large n (see Condensed32).
type Float interface {
	~float32 | ~float64
}

// Condensed stores the strict upper triangle of an n×n symmetric
// matrix with a zero diagonal — the natural shape of a pairwise
// distance matrix — in one contiguous []F of n(n−1)/2 entries.
// Pair (i, j) with i < j lives at offset
//
//	idx(i, j) = i·(2n−i−1)/2 + (j−i−1),
//
// so the entries of row i against all higher-indexed columns
// (i, i+1), (i, i+2), …, (i, n−1) are contiguous: nearest-pair scans
// walk a flat array front to back instead of chasing n row pointers,
// and the whole matrix costs half the memory of the dense form. Both
// halves of a symmetric pair share one slot, which is also what makes
// condensed storage safe for in-place Lance–Williams updates: writing
// d(a, k) can never leave a stale mirror entry behind.
//
// Use the CondensedMatrix (float64) and Condensed32 (float32)
// instantiations; the type parameter only selects storage precision,
// never layout.
type Condensed[F Float] struct {
	n    int
	data []F
}

// CondensedMatrix is the float64 condensed matrix — the exact storage
// every default code path uses.
type CondensedMatrix = Condensed[float64]

// Condensed32 is the float32 condensed matrix: half the memory of
// CondensedMatrix, which at n=100k is the difference between a ~20 GB
// working set and a ~40 GB one. Each stored entry is the float64
// distance rounded to nearest float32, so the per-entry relative
// error is bounded by the binary32 unit roundoff 2⁻²⁴ (values beyond
// float32 range overflow to +Inf; workload distances never get
// there). Opt-in: callers that need bit-exact float64 agglomeration
// must stay on CondensedMatrix.
type Condensed32 = Condensed[float32]

func newCondensed[F Float](n int) *Condensed[F] {
	if n <= 0 {
		panic(fmt.Sprintf("vecmath: invalid condensed matrix size %d", n))
	}
	return &Condensed[F]{n: n, data: make([]F, n*(n-1)/2)}
}

// NewCondensedMatrix returns a zero condensed matrix representing an
// n×n symmetric matrix. It panics on non-positive n; n == 1 is legal
// and holds no entries.
func NewCondensedMatrix(n int) *CondensedMatrix { return newCondensed[float64](n) }

// NewCondensed32 is NewCondensedMatrix in float32 storage.
func NewCondensed32(n int) *Condensed32 { return newCondensed[float32](n) }

// CondensedFromDense copies the strict upper triangle of a dense
// symmetric matrix into condensed form. The caller is responsible for
// symmetry; only the i < j entries are read.
func CondensedFromDense(m *Matrix) (*CondensedMatrix, error) {
	n := m.Rows()
	if n == 0 || m.Cols() != n {
		return nil, fmt.Errorf("vecmath: cannot condense a %dx%d matrix", m.Rows(), m.Cols())
	}
	c := NewCondensedMatrix(n)
	t := 0
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			c.data[t] = m.At(i, j)
			t++
		}
	}
	return c, nil
}

// N returns the size of the represented square matrix.
func (c *Condensed[F]) N() int { return c.n }

// Index returns the data offset of pair (i, j). The arguments commute;
// it panics on i == j (the diagonal is implicit) or out-of-range
// indices.
func (c *Condensed[F]) Index(i, j int) int {
	if i > j {
		i, j = j, i
	}
	if i < 0 || j >= c.n || i == j {
		panic(fmt.Sprintf("vecmath: condensed index (%d,%d) invalid for n=%d", i, j, c.n))
	}
	return i*(2*c.n-i-1)/2 + (j - i - 1)
}

// At returns the (i, j) entry; the diagonal reads as 0.
func (c *Condensed[F]) At(i, j int) F {
	if i == j {
		if i < 0 || i >= c.n {
			panic(fmt.Sprintf("vecmath: condensed index (%d,%d) invalid for n=%d", i, j, c.n))
		}
		return 0
	}
	return c.data[c.Index(i, j)]
}

// Set assigns the (i, j) entry (and, implicitly, its mirror). It
// panics on the diagonal.
func (c *Condensed[F]) Set(i, j int, v F) { c.data[c.Index(i, j)] = v }

// RowTail returns the contiguous slice of entries (i, i+1) … (i, n−1)
// — row i against every higher-indexed column. Entry t of the slice is
// the pair (i, i+1+t). The slice aliases the matrix storage.
func (c *Condensed[F]) RowTail(i int) []F {
	start := c.Index0(i)
	return c.data[start : start+c.n-1-i]
}

// Index0 returns the offset of the first entry of row i's tail,
// idx(i, i+1); for i == n−1 it returns len(Data()) (an empty tail).
func (c *Condensed[F]) Index0(i int) int {
	if i < 0 || i >= c.n {
		panic(fmt.Sprintf("vecmath: condensed row %d invalid for n=%d", i, c.n))
	}
	return i * (2*c.n - i - 1) / 2
}

// Data returns the backing slice (shared, not a copy): all n(n−1)/2
// pair entries in row-major tail order.
func (c *Condensed[F]) Data() []F { return c.data }

// Clone returns an independent deep copy.
func (c *Condensed[F]) Clone() *Condensed[F] {
	out := &Condensed[F]{n: c.n, data: make([]F, len(c.data))}
	copy(out.data, c.data)
	return out
}

// Dense expands the condensed matrix to its full symmetric n×n form
// with a zero diagonal (float32 entries widen exactly).
func (c *Condensed[F]) Dense() *Matrix {
	m := NewMatrix(c.n, c.n)
	t := 0
	for i := 0; i < c.n; i++ {
		for j := i + 1; j < c.n; j++ {
			v := float64(c.data[t])
			m.Set(i, j, v)
			m.Set(j, i, v)
			t++
		}
	}
	return m
}

// condensedTile is the tile side (points per tile) of the blocked
// distance-matrix build. A row-major build walks each row's full tail,
// so by the time row i+1 starts, points[i+2:] have long been evicted;
// the tiled build instead computes all pairs between two blocks of
// condensedTile points before moving on, keeping both blocks hot. Two
// tiles of 128 points at a typical dim ≲ 16 are 128·16·8 B ≈ 16 KB
// each — comfortably co-resident in a 32 KB L1d with room for the
// output slots, and far under any L2. The output order per row tail is
// unchanged (slot (i, j) is written exactly once, by the tile pair
// owning it), so the build is bit-identical to the row-major one.
const condensedTile = 128

// condensedTileShardPairs is the tile-pair shard width of the parallel
// tiled build: small shards interleave across workers so the lighter
// diagonal tiles (half the pairs of an off-diagonal tile) cannot
// unbalance the fan-out.
const condensedTileShardPairs = 4

// condensedDistanceTiled is the shared tiled build: pairs are
// enumerated in (i, j)-tiles, each written by exactly one shard.
// Storing through F(·) is the only precision-dependent step — the
// identity for float64, round-to-nearest for float32.
func condensedDistanceTiled[F Float](ctx context.Context, m Metric, points []Vector, workers int) (*Condensed[F], error) {
	n := len(points)
	out := newCondensed[F](n)
	// Resolve the metric kernel once: the inner loop runs one indirect
	// call per pair instead of re-dispatching the metric switch.
	kern := m.Kernel()
	nt := (n + condensedTile - 1) / condensedTile
	pairs := make([][2]int, 0, nt*(nt+1)/2)
	for a := 0; a < nt; a++ {
		for b := a; b < nt; b++ {
			pairs = append(pairs, [2]int{a, b})
		}
	}
	_, err := par.FixedShardsCtx(ctx, workers, len(pairs), condensedTileShardPairs, func(_, start, end int) {
		for p := start; p < end; p++ {
			a, b := pairs[p][0], pairs[p][1]
			i1 := min(n, (a+1)*condensedTile)
			j0, j1 := b*condensedTile, min(n, (b+1)*condensedTile)
			for i := a * condensedTile; i < i1; i++ {
				js := j0
				if js <= i {
					js = i + 1
				}
				if js >= j1 {
					continue
				}
				// Row i's slots against columns [js, j1) are contiguous
				// in the row tail.
				base := out.Index0(i) - i - 1
				row := out.data[base+js : base+j1]
				pi := points[i]
				for t := range row {
					row[t] = F(kern(pi, points[js+t]))
				}
			}
		}
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// condensedDistanceRowMajor is the retired row-major build, kept
// verbatim as the oracle the tiled build is proven bit-identical
// against. It is referenced only by tests.
func condensedDistanceRowMajor(m Metric, points []Vector) *CondensedMatrix {
	n := len(points)
	out := NewCondensedMatrix(n)
	kern := m.Kernel()
	for i := 0; i < n; i++ {
		row := out.RowTail(i)
		pi := points[i]
		for t := range row {
			row[t] = kern(pi, points[i+1+t])
		}
	}
	return out
}

// CondensedDistanceMatrix returns the pairwise distances of points
// under metric m in condensed form: each of the n(n−1)/2 pairs is
// computed exactly once, in cache-friendly (i, j)-tiles (see
// condensedTile).
func CondensedDistanceMatrix(m Metric, points []Vector) *CondensedMatrix {
	return CondensedDistanceMatrixP(m, points, 1)
}

// CondensedDistanceMatrixP is CondensedDistanceMatrix sharded across
// `workers` goroutines, one tile pair owned by exactly one shard.
// Every entry is a pure function of one point pair and each pair is
// written exactly once, so the matrix is identical for any worker
// count — and identical to the serial build.
func CondensedDistanceMatrixP(m Metric, points []Vector, workers int) *CondensedMatrix {
	out, _ := CondensedDistanceMatrixCtx(context.Background(), m, points, workers)
	return out
}

// CondensedDistanceMatrixCtx is CondensedDistanceMatrixP with
// cooperative cancellation: tile shards not yet started when ctx
// fires are skipped and the context's error returned (the partial
// matrix must be discarded). With a context that never fires it is
// bit-identical to CondensedDistanceMatrixP.
func CondensedDistanceMatrixCtx(ctx context.Context, m Metric, points []Vector, workers int) (*CondensedMatrix, error) {
	return condensedDistanceTiled[float64](ctx, m, points, workers)
}

// Condensed32DistanceMatrix is CondensedDistanceMatrix in float32
// storage: distances are computed in float64 (same kernels, same
// arithmetic) and rounded once on store, so each entry carries at
// most the binary32 unit roundoff 2⁻²⁴ of relative error. See
// Condensed32 for when the halved footprint is worth that bound.
func Condensed32DistanceMatrix(m Metric, points []Vector) *Condensed32 {
	return Condensed32DistanceMatrixP(m, points, 1)
}

// Condensed32DistanceMatrixP is Condensed32DistanceMatrix sharded
// across `workers` goroutines; identical for any worker count.
func Condensed32DistanceMatrixP(m Metric, points []Vector, workers int) *Condensed32 {
	out, _ := Condensed32DistanceMatrixCtx(context.Background(), m, points, workers)
	return out
}

// Condensed32DistanceMatrixCtx is Condensed32DistanceMatrixP with
// cooperative cancellation, mirroring CondensedDistanceMatrixCtx.
func Condensed32DistanceMatrixCtx(ctx context.Context, m Metric, points []Vector, workers int) (*Condensed32, error) {
	return condensedDistanceTiled[float32](ctx, m, points, workers)
}
