package vecmath

import (
	"context"
	"fmt"

	"hmeans/internal/par"
)

// CondensedMatrix stores the strict upper triangle of an n×n symmetric
// matrix with a zero diagonal — the natural shape of a pairwise
// distance matrix — in one contiguous []float64 of n(n−1)/2 entries.
// Pair (i, j) with i < j lives at offset
//
//	idx(i, j) = i·(2n−i−1)/2 + (j−i−1),
//
// so the entries of row i against all higher-indexed columns
// (i, i+1), (i, i+2), …, (i, n−1) are contiguous: nearest-pair scans
// walk a flat array front to back instead of chasing n row pointers,
// and the whole matrix costs half the memory of the dense form. Both
// halves of a symmetric pair share one slot, which is also what makes
// condensed storage safe for in-place Lance–Williams updates: writing
// d(a, k) can never leave a stale mirror entry behind.
type CondensedMatrix struct {
	n    int
	data []float64
}

// NewCondensedMatrix returns a zero condensed matrix representing an
// n×n symmetric matrix. It panics on non-positive n; n == 1 is legal
// and holds no entries.
func NewCondensedMatrix(n int) *CondensedMatrix {
	if n <= 0 {
		panic(fmt.Sprintf("vecmath: invalid condensed matrix size %d", n))
	}
	return &CondensedMatrix{n: n, data: make([]float64, n*(n-1)/2)}
}

// CondensedFromDense copies the strict upper triangle of a dense
// symmetric matrix into condensed form. The caller is responsible for
// symmetry; only the i < j entries are read.
func CondensedFromDense(m *Matrix) (*CondensedMatrix, error) {
	n := m.Rows()
	if n == 0 || m.Cols() != n {
		return nil, fmt.Errorf("vecmath: cannot condense a %dx%d matrix", m.Rows(), m.Cols())
	}
	c := NewCondensedMatrix(n)
	t := 0
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			c.data[t] = m.At(i, j)
			t++
		}
	}
	return c, nil
}

// N returns the size of the represented square matrix.
func (c *CondensedMatrix) N() int { return c.n }

// Index returns the data offset of pair (i, j). The arguments commute;
// it panics on i == j (the diagonal is implicit) or out-of-range
// indices.
func (c *CondensedMatrix) Index(i, j int) int {
	if i > j {
		i, j = j, i
	}
	if i < 0 || j >= c.n || i == j {
		panic(fmt.Sprintf("vecmath: condensed index (%d,%d) invalid for n=%d", i, j, c.n))
	}
	return i*(2*c.n-i-1)/2 + (j - i - 1)
}

// At returns the (i, j) entry; the diagonal reads as 0.
func (c *CondensedMatrix) At(i, j int) float64 {
	if i == j {
		if i < 0 || i >= c.n {
			panic(fmt.Sprintf("vecmath: condensed index (%d,%d) invalid for n=%d", i, j, c.n))
		}
		return 0
	}
	return c.data[c.Index(i, j)]
}

// Set assigns the (i, j) entry (and, implicitly, its mirror). It
// panics on the diagonal.
func (c *CondensedMatrix) Set(i, j int, v float64) { c.data[c.Index(i, j)] = v }

// RowTail returns the contiguous slice of entries (i, i+1) … (i, n−1)
// — row i against every higher-indexed column. Entry t of the slice is
// the pair (i, i+1+t). The slice aliases the matrix storage.
func (c *CondensedMatrix) RowTail(i int) []float64 {
	start := c.Index0(i)
	return c.data[start : start+c.n-1-i]
}

// Index0 returns the offset of the first entry of row i's tail,
// idx(i, i+1); for i == n−1 it returns len(Data()) (an empty tail).
func (c *CondensedMatrix) Index0(i int) int {
	if i < 0 || i >= c.n {
		panic(fmt.Sprintf("vecmath: condensed row %d invalid for n=%d", i, c.n))
	}
	return i * (2*c.n - i - 1) / 2
}

// Data returns the backing slice (shared, not a copy): all n(n−1)/2
// pair entries in row-major tail order.
func (c *CondensedMatrix) Data() []float64 { return c.data }

// Clone returns an independent deep copy.
func (c *CondensedMatrix) Clone() *CondensedMatrix {
	out := &CondensedMatrix{n: c.n, data: make([]float64, len(c.data))}
	copy(out.data, c.data)
	return out
}

// Dense expands the condensed matrix to its full symmetric n×n form
// with a zero diagonal.
func (c *CondensedMatrix) Dense() *Matrix {
	m := NewMatrix(c.n, c.n)
	t := 0
	for i := 0; i < c.n; i++ {
		for j := i + 1; j < c.n; j++ {
			v := c.data[t]
			m.Set(i, j, v)
			m.Set(j, i, v)
			t++
		}
	}
	return m
}

// CondensedDistanceMatrix returns the pairwise distances of points
// under metric m in condensed form: each of the n(n−1)/2 pairs is
// computed exactly once.
func CondensedDistanceMatrix(m Metric, points []Vector) *CondensedMatrix {
	return CondensedDistanceMatrixP(m, points, 1)
}

// CondensedDistanceMatrixP is CondensedDistanceMatrix sharded across
// `workers` goroutines. Every entry is a pure function of one point
// pair and each pair is written by exactly one shard, so the matrix is
// identical for any worker count.
func CondensedDistanceMatrixP(m Metric, points []Vector, workers int) *CondensedMatrix {
	out, _ := CondensedDistanceMatrixCtx(context.Background(), m, points, workers)
	return out
}

// CondensedDistanceMatrixCtx is CondensedDistanceMatrixP with
// cooperative cancellation: row shards not yet started when ctx fires
// are skipped and the context's error returned (the partial matrix
// must be discarded). With a context that never fires it is
// bit-identical to CondensedDistanceMatrixP.
func CondensedDistanceMatrixCtx(ctx context.Context, m Metric, points []Vector, workers int) (*CondensedMatrix, error) {
	n := len(points)
	out := NewCondensedMatrix(n)
	// Resolve the metric kernel once: the inner loop runs one indirect
	// call per pair instead of re-dispatching the metric switch.
	kern := m.Kernel()
	_, err := par.FixedShardsCtx(ctx, workers, n, distanceMatrixShardRows, func(_, start, end int) {
		for i := start; i < end; i++ {
			row := out.RowTail(i)
			pi := points[i]
			for t := range row {
				row[t] = kern(pi, points[i+1+t])
			}
		}
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}
