package vecmath

import (
	"math"
	"testing"

	"hmeans/internal/rng"
)

// TestDistanceMatrixParallelMatchesSerial checks every metric's
// sharded matrix build against the serial one, bit for bit.
func TestDistanceMatrixParallelMatchesSerial(t *testing.T) {
	r := rng.New(41)
	pts := make([]Vector, 37)
	for i := range pts {
		pts[i] = NewVector(5)
		for j := range pts[i] {
			pts[i][j] = r.NormFloat64()
		}
	}
	for _, m := range []Metric{Euclidean, Manhattan, Chebyshev, Cosine} {
		serial := DistanceMatrix(m, pts)
		for _, workers := range []int{1, 2, 8} {
			got := DistanceMatrixP(m, pts, workers)
			for i := 0; i < serial.Rows(); i++ {
				for j := 0; j < serial.Cols(); j++ {
					if math.Float64bits(serial.At(i, j)) != math.Float64bits(got.At(i, j)) {
						t.Fatalf("%v workers %d: entry (%d,%d) = %v, serial %v",
							m, workers, i, j, got.At(i, j), serial.At(i, j))
					}
				}
			}
		}
	}
}
