package vecmath

import (
	"math"

	"hmeans/internal/rng"
)

// TopEigen computes the k largest-magnitude eigenpairs of the
// symmetric positive-semidefinite matrix a (e.g. a covariance matrix)
// by power iteration with Hotelling deflation. For the
// dimensionalities the SOM's PCA initialization sees on bit-vector
// characterizations (hundreds of features), extracting two components
// this way is far cheaper than a full Jacobi decomposition, which is
// cubic per sweep.
//
// The matrix must be symmetric; eigenvalues of PSD matrices are
// non-negative so largest-magnitude equals largest. Deflation
// accumulates error with k, so this path is intended for small k
// (the pipeline needs k = 2).
func TopEigen(a *Matrix, k int, seed uint64) (*Eigen, error) {
	const (
		maxIter = 1000
		tol     = 1e-10
	)
	if !a.IsSymmetric(1e-9) {
		return nil, ErrNotSymmetric
	}
	n := a.Rows()
	if k < 1 || k > n {
		return nil, ErrNoConvergence
	}
	r := rng.New(seed)
	work := a.Clone()
	out := &Eigen{Values: make([]float64, 0, k), Vectors: make([]Vector, 0, k)}
	for comp := 0; comp < k; comp++ {
		v := make(Vector, n)
		for i := range v {
			v[i] = r.NormFloat64()
		}
		v = v.Normalize()
		lambda := 0.0
		converged := false
		for iter := 0; iter < maxIter; iter++ {
			next := work.MulVec(v)
			norm := next.Norm()
			if norm < 1e-300 {
				// The deflated matrix annihilated the guess: the
				// remaining spectrum is (numerically) zero.
				lambda = 0
				converged = true
				break
			}
			next = next.Scale(1 / norm)
			newLambda := next.Dot(work.MulVec(next))
			if math.Abs(newLambda-lambda) <= tol*math.Max(1, math.Abs(newLambda)) &&
				EuclideanDistance(next, v) < 1e-8 {
				v, lambda = next, newLambda
				converged = true
				break
			}
			v, lambda = next, newLambda
		}
		if !converged {
			return nil, ErrNoConvergence
		}
		out.Values = append(out.Values, lambda)
		out.Vectors = append(out.Vectors, v)
		// Hotelling deflation: work -= λ v vᵀ.
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				work.Set(i, j, work.At(i, j)-lambda*v[i]*v[j])
			}
		}
	}
	return out, nil
}
