package vecmath

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDistanceValues(t *testing.T) {
	v := Vector{0, 0}
	w := Vector{3, 4}
	cases := []struct {
		m    Metric
		want float64
	}{
		{Euclidean, 5},
		{Manhattan, 7},
		{Chebyshev, 4},
	}
	for _, c := range cases {
		if got := Distance(c.m, v, w); !almostEqual(got, c.want, 1e-12) {
			t.Errorf("%v distance = %v, want %v", c.m, got, c.want)
		}
	}
}

func TestCosineDistance(t *testing.T) {
	if got := Distance(Cosine, Vector{1, 0}, Vector{2, 0}); !almostEqual(got, 0, 1e-12) {
		t.Errorf("parallel cosine distance = %v, want 0", got)
	}
	if got := Distance(Cosine, Vector{1, 0}, Vector{0, 1}); !almostEqual(got, 1, 1e-12) {
		t.Errorf("orthogonal cosine distance = %v, want 1", got)
	}
	if got := Distance(Cosine, Vector{1, 0}, Vector{-1, 0}); !almostEqual(got, 2, 1e-12) {
		t.Errorf("antiparallel cosine distance = %v, want 2", got)
	}
	if got := Distance(Cosine, Vector{0, 0}, Vector{1, 1}); got != 1 {
		t.Errorf("zero-vector cosine distance = %v, want 1", got)
	}
}

func TestMetricString(t *testing.T) {
	names := map[Metric]string{Euclidean: "euclidean", Manhattan: "manhattan", Chebyshev: "chebyshev", Cosine: "cosine", Metric(99): "unknown"}
	for m, want := range names {
		if m.String() != want {
			t.Errorf("Metric(%d).String() = %q, want %q", m, m.String(), want)
		}
	}
}

func TestSquaredEuclideanConsistent(t *testing.T) {
	v := Vector{1, 2, 3}
	w := Vector{4, 6, 3}
	d := EuclideanDistance(v, w)
	if !almostEqual(d*d, SquaredEuclidean(v, w), 1e-12) {
		t.Error("EuclideanDistance² != SquaredEuclidean")
	}
}

func TestDistanceMatrixProperties(t *testing.T) {
	pts := []Vector{{0, 0}, {1, 0}, {0, 2}, {3, 3}}
	dm := DistanceMatrix(Euclidean, pts)
	n := len(pts)
	for i := 0; i < n; i++ {
		if dm.At(i, i) != 0 {
			t.Errorf("diagonal (%d,%d) = %v, want 0", i, i, dm.At(i, i))
		}
		for j := 0; j < n; j++ {
			if dm.At(i, j) != dm.At(j, i) {
				t.Errorf("asymmetry at (%d,%d)", i, j)
			}
		}
	}
	if !almostEqual(dm.At(0, 1), 1, 1e-12) || !almostEqual(dm.At(0, 2), 2, 1e-12) {
		t.Errorf("wrong distances: %v, %v", dm.At(0, 1), dm.At(0, 2))
	}
}

// Property: metric axioms (symmetry, identity, triangle inequality)
// for the three Minkowski metrics.
func TestMetricAxioms(t *testing.T) {
	for _, m := range []Metric{Euclidean, Manhattan, Chebyshev} {
		m := m
		f := func(rawA, rawB, rawC []float64) bool {
			a := cleanVec(rawA, 4)
			b := cleanVec(rawB, 4)
			c := cleanVec(rawC, 4)
			dab := Distance(m, a, b)
			dba := Distance(m, b, a)
			dac := Distance(m, a, c)
			dcb := Distance(m, c, b)
			if !almostEqual(dab, dba, 1e-9) {
				return false
			}
			if Distance(m, a, a) != 0 {
				return false
			}
			return dab <= dac+dcb+1e-6
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
			t.Fatalf("metric %v: %v", m, err)
		}
	}
}

// Property: Euclidean distance is invariant under translation.
func TestEuclideanTranslationInvariance(t *testing.T) {
	f := func(rawA, rawB []float64, shiftRaw float64) bool {
		a := cleanVec(rawA, 4)
		b := cleanVec(rawB, 4)
		shift := math.Mod(shiftRaw, 100)
		if math.IsNaN(shift) {
			shift = 0
		}
		sv := Vector{shift, shift, shift, shift}
		return almostEqual(EuclideanDistance(a, b), EuclideanDistance(a.Add(sv), b.Add(sv)), 1e-7)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}
