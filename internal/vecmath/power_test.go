package vecmath

import (
	"errors"
	"math"
	"testing"

	"hmeans/internal/rng"
)

// randomPSD builds a random symmetric positive-semidefinite matrix
// as BᵀB.
func randomPSD(n int, seed uint64) *Matrix {
	r := rng.New(seed)
	b := NewMatrix(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			b.Set(i, j, r.NormFloat64())
		}
	}
	return b.Transpose().Mul(b)
}

func TestTopEigenMatchesJacobi(t *testing.T) {
	for _, n := range []int{3, 6, 12, 25} {
		a := randomPSD(n, uint64(n)*7)
		full, err := SymmetricEigen(a)
		if err != nil {
			t.Fatal(err)
		}
		top, err := TopEigen(a, 2, 1)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		for c := 0; c < 2; c++ {
			if !almostEqual(top.Values[c], full.Values[c], 1e-6) {
				t.Fatalf("n=%d comp %d: λ=%v, Jacobi %v", n, c, top.Values[c], full.Values[c])
			}
			// Vectors match up to sign.
			dot := math.Abs(top.Vectors[c].Dot(full.Vectors[c]))
			if !almostEqual(dot, 1, 1e-5) {
				t.Fatalf("n=%d comp %d: |cos| = %v", n, c, dot)
			}
		}
	}
}

func TestTopEigenDiagonal(t *testing.T) {
	a := FromRows([][]float64{{5, 0, 0}, {0, 2, 0}, {0, 0, 9}})
	top, err := TopEigen(a, 2, 3)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(top.Values[0], 9, 1e-8) || !almostEqual(top.Values[1], 5, 1e-8) {
		t.Fatalf("values = %v, want [9 5]", top.Values)
	}
}

func TestTopEigenRankDeficient(t *testing.T) {
	// Rank-1 matrix: second eigenvalue is zero; the solver must not
	// spin forever.
	v := Vector{1, 2, 3}.Normalize()
	a := NewMatrix(3, 3)
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			a.Set(i, j, 4*v[i]*v[j])
		}
	}
	top, err := TopEigen(a, 2, 5)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(top.Values[0], 4, 1e-8) {
		t.Fatalf("λ1 = %v, want 4", top.Values[0])
	}
	if math.Abs(top.Values[1]) > 1e-6 {
		t.Fatalf("λ2 = %v, want ~0", top.Values[1])
	}
}

func TestTopEigenErrors(t *testing.T) {
	asym := FromRows([][]float64{{1, 2}, {3, 4}})
	if _, err := TopEigen(asym, 1, 1); !errors.Is(err, ErrNotSymmetric) {
		t.Error("asymmetric matrix accepted")
	}
	a := randomPSD(3, 1)
	if _, err := TopEigen(a, 0, 1); err == nil {
		t.Error("k=0 accepted")
	}
	if _, err := TopEigen(a, 4, 1); err == nil {
		t.Error("k>n accepted")
	}
}

func BenchmarkTopEigen2VsJacobi(b *testing.B) {
	b.ReportAllocs()
	a := randomPSD(150, 9)
	b.Run("power-top2", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := TopEigen(a, 2, 1); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("jacobi-full", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := SymmetricEigen(a); err != nil {
				b.Fatal(err)
			}
		}
	})
}
