package vecmath

import (
	"errors"
	"testing"
	"testing/quick"

	"hmeans/internal/rng"
)

func TestSolveKnown(t *testing.T) {
	a := FromRows([][]float64{{2, 1}, {1, 3}})
	x, err := Solve(a, Vector{5, 10})
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(x[0], 1, 1e-9) || !almostEqual(x[1], 3, 1e-9) {
		t.Fatalf("x = %v, want [1 3]", x)
	}
}

func TestSolveNeedsPivoting(t *testing.T) {
	// Zero pivot at (0,0) forces a row swap.
	a := FromRows([][]float64{{0, 1}, {1, 0}})
	x, err := Solve(a, Vector{2, 3})
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(x[0], 3, 1e-12) || !almostEqual(x[1], 2, 1e-12) {
		t.Fatalf("x = %v, want [3 2]", x)
	}
}

func TestSolveSingular(t *testing.T) {
	a := FromRows([][]float64{{1, 2}, {2, 4}})
	if _, err := Solve(a, Vector{1, 2}); !errors.Is(err, ErrSingular) {
		t.Fatalf("err = %v, want ErrSingular", err)
	}
}

func TestSolveShapeErrors(t *testing.T) {
	if _, err := Solve(NewMatrix(2, 3), Vector{1, 2}); err == nil {
		t.Error("non-square matrix accepted")
	}
	if _, err := Solve(NewMatrix(2, 2), Vector{1}); err == nil {
		t.Error("wrong-length b accepted")
	}
}

func TestSolveDoesNotMutate(t *testing.T) {
	a := FromRows([][]float64{{2, 1}, {1, 3}})
	b := Vector{5, 10}
	if _, err := Solve(a, b); err != nil {
		t.Fatal(err)
	}
	if a.At(0, 0) != 2 || a.At(1, 1) != 3 || b[0] != 5 {
		t.Fatal("Solve mutated its inputs")
	}
}

// Property: for random well-conditioned systems, a·x ≈ b.
func TestSolveResidual(t *testing.T) {
	f := func(seed uint64) bool {
		n := int(seed%5) + 2
		r := rng.New(seed)
		a := NewMatrix(n, n)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				a.Set(i, j, r.NormFloat64())
			}
			a.Set(i, i, a.At(i, i)+float64(n)) // diagonal dominance
		}
		b := make(Vector, n)
		for i := range b {
			b[i] = r.NormFloat64() * 10
		}
		x, err := Solve(a, b)
		if err != nil {
			return false
		}
		res := a.MulVec(x).Sub(b)
		return res.Norm() < 1e-8
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

func TestLeastSquaresExact(t *testing.T) {
	// Overdetermined but consistent: y = 2x + 1 sampled at 4 points.
	a := FromRows([][]float64{{1, 1}, {2, 1}, {3, 1}, {4, 1}})
	b := Vector{3, 5, 7, 9}
	x, err := LeastSquares(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(x[0], 2, 1e-9) || !almostEqual(x[1], 1, 1e-9) {
		t.Fatalf("fit = %v, want [2 1]", x)
	}
}

func TestLeastSquaresRegression(t *testing.T) {
	// Noisy fit must minimize the residual: compare against the
	// closed-form simple-regression solution.
	xs := []float64{0, 1, 2, 3, 4}
	ys := []float64{1.1, 2.9, 5.2, 6.8, 9.1}
	a := NewMatrix(len(xs), 2)
	for i, x := range xs {
		a.Set(i, 0, x)
		a.Set(i, 1, 1)
	}
	got, err := LeastSquares(a, Vector(ys))
	if err != nil {
		t.Fatal(err)
	}
	// Closed form.
	var sx, sy, sxx, sxy float64
	n := float64(len(xs))
	for i := range xs {
		sx += xs[i]
		sy += ys[i]
		sxx += xs[i] * xs[i]
		sxy += xs[i] * ys[i]
	}
	slope := (n*sxy - sx*sy) / (n*sxx - sx*sx)
	intercept := (sy - slope*sx) / n
	if !almostEqual(got[0], slope, 1e-9) || !almostEqual(got[1], intercept, 1e-9) {
		t.Fatalf("fit = %v, want [%v %v]", got, slope, intercept)
	}
}

func TestLeastSquaresDimensionMismatch(t *testing.T) {
	if _, err := LeastSquares(NewMatrix(3, 2), Vector{1, 2}); err == nil {
		t.Error("dimension mismatch accepted")
	}
}
