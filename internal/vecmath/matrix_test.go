package vecmath

import (
	"testing"
)

func TestMatrixBasics(t *testing.T) {
	m := NewMatrix(2, 3)
	m.Set(0, 0, 1)
	m.Set(1, 2, 5)
	if m.Rows() != 2 || m.Cols() != 3 {
		t.Fatalf("shape = %dx%d, want 2x3", m.Rows(), m.Cols())
	}
	if m.At(0, 0) != 1 || m.At(1, 2) != 5 || m.At(0, 1) != 0 {
		t.Fatal("Set/At round-trip failed")
	}
}

func TestNewMatrixPanicsOnBadShape(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewMatrix(0, 3) did not panic")
		}
	}()
	NewMatrix(0, 3)
}

func TestFromRows(t *testing.T) {
	m := FromRows([][]float64{{1, 2}, {3, 4}})
	if m.At(0, 1) != 2 || m.At(1, 0) != 3 {
		t.Fatal("FromRows layout wrong")
	}
}

func TestFromRowsRaggedPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("ragged FromRows did not panic")
		}
	}()
	FromRows([][]float64{{1, 2}, {3}})
}

func TestRowIsView(t *testing.T) {
	m := FromRows([][]float64{{1, 2}, {3, 4}})
	r := m.Row(0)
	r[0] = 99
	if m.At(0, 0) != 99 {
		t.Fatal("Row should be a view into the matrix")
	}
}

func TestColIsCopy(t *testing.T) {
	m := FromRows([][]float64{{1, 2}, {3, 4}})
	c := m.Col(0)
	c[0] = 99
	if m.At(0, 0) != 1 {
		t.Fatal("Col should copy")
	}
}

func TestTranspose(t *testing.T) {
	m := FromRows([][]float64{{1, 2, 3}, {4, 5, 6}})
	mt := m.Transpose()
	if mt.Rows() != 3 || mt.Cols() != 2 {
		t.Fatalf("transpose shape = %dx%d", mt.Rows(), mt.Cols())
	}
	for i := 0; i < 2; i++ {
		for j := 0; j < 3; j++ {
			if m.At(i, j) != mt.At(j, i) {
				t.Fatal("transpose values wrong")
			}
		}
	}
}

func TestMul(t *testing.T) {
	a := FromRows([][]float64{{1, 2}, {3, 4}})
	b := FromRows([][]float64{{5, 6}, {7, 8}})
	c := a.Mul(b)
	want := [][]float64{{19, 22}, {43, 50}}
	for i := range want {
		for j := range want[i] {
			if c.At(i, j) != want[i][j] {
				t.Fatalf("Mul = %v at (%d,%d), want %v", c.At(i, j), i, j, want[i][j])
			}
		}
	}
}

func TestMulIdentity(t *testing.T) {
	a := FromRows([][]float64{{1, 2}, {3, 4}})
	c := a.Mul(Identity(2))
	for i := 0; i < 2; i++ {
		for j := 0; j < 2; j++ {
			if c.At(i, j) != a.At(i, j) {
				t.Fatal("A·I != A")
			}
		}
	}
}

func TestMulVec(t *testing.T) {
	a := FromRows([][]float64{{1, 2}, {3, 4}})
	got := a.MulVec(Vector{1, 1})
	if got[0] != 3 || got[1] != 7 {
		t.Fatalf("MulVec = %v, want [3 7]", got)
	}
}

func TestMulShapeMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("shape-mismatched Mul did not panic")
		}
	}()
	NewMatrix(2, 3).Mul(NewMatrix(2, 3))
}

func TestIsSymmetric(t *testing.T) {
	s := FromRows([][]float64{{1, 2}, {2, 1}})
	if !s.IsSymmetric(0) {
		t.Error("symmetric matrix not recognized")
	}
	a := FromRows([][]float64{{1, 2}, {3, 1}})
	if a.IsSymmetric(0.5) {
		t.Error("asymmetric matrix accepted")
	}
	r := NewMatrix(2, 3)
	if r.IsSymmetric(1) {
		t.Error("non-square matrix accepted as symmetric")
	}
}

func TestCovarianceMatrix(t *testing.T) {
	// Two perfectly correlated features.
	obs := FromRows([][]float64{{1, 2}, {2, 4}, {3, 6}})
	cov, means := CovarianceMatrix(obs)
	if !almostEqual(means[0], 2, 1e-12) || !almostEqual(means[1], 4, 1e-12) {
		t.Fatalf("means = %v", means)
	}
	if !almostEqual(cov.At(0, 0), 2.0/3.0, 1e-12) {
		t.Errorf("var(x) = %v, want 2/3", cov.At(0, 0))
	}
	if !almostEqual(cov.At(1, 1), 8.0/3.0, 1e-12) {
		t.Errorf("var(y) = %v, want 8/3", cov.At(1, 1))
	}
	if !almostEqual(cov.At(0, 1), 4.0/3.0, 1e-12) || cov.At(0, 1) != cov.At(1, 0) {
		t.Errorf("cov(x,y) = %v / %v, want 4/3 symmetric", cov.At(0, 1), cov.At(1, 0))
	}
}
