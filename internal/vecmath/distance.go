package vecmath

import (
	"context"
	"math"

	"hmeans/internal/par"
)

// Metric identifies a point-to-point distance function.
type Metric int

const (
	// Euclidean is the L2 distance, the paper's choice for both the
	// SOM best-matching-unit search and the clustering point distance.
	Euclidean Metric = iota
	// Manhattan is the L1 distance.
	Manhattan
	// Chebyshev is the L∞ distance.
	Chebyshev
	// Cosine is 1 - cosine similarity; it is 0 for parallel vectors
	// and 2 for anti-parallel ones. Zero vectors are at distance 1
	// from everything, a conventional choice that keeps the metric
	// total.
	Cosine
)

// String returns the metric's name.
func (m Metric) String() string {
	switch m {
	case Euclidean:
		return "euclidean"
	case Manhattan:
		return "manhattan"
	case Chebyshev:
		return "chebyshev"
	case Cosine:
		return "cosine"
	default:
		return "unknown"
	}
}

// Distance returns the distance between v and w under metric m.
// Loops computing many distances under one fixed metric should hoist
// the dispatch with Kernel instead of calling Distance per pair.
func Distance(m Metric, v, w Vector) float64 {
	return m.Kernel()(v, w)
}

// Kernel resolves the metric's point-pair distance function once, so
// bulk callers (distance-matrix builds, nearest-neighbour scans) pay
// one switch per call instead of one per pair. Every kernel computes
// exactly what Distance computes — same arithmetic, same order.
func (m Metric) Kernel() func(v, w Vector) float64 {
	switch m {
	case Euclidean:
		return EuclideanDistance
	case Manhattan:
		return ManhattanDistance
	case Chebyshev:
		return ChebyshevDistance
	case Cosine:
		return CosineDistance
	default:
		panic("vecmath: unknown metric")
	}
}

// ManhattanDistance returns the L1 distance between v and w.
func ManhattanDistance(v, w Vector) float64 {
	assertSameLen(v, w)
	sum := 0.0
	for i := range v {
		sum += math.Abs(v[i] - w[i])
	}
	return sum
}

// ChebyshevDistance returns the L∞ distance between v and w.
func ChebyshevDistance(v, w Vector) float64 {
	assertSameLen(v, w)
	maxAbs := 0.0
	for i := range v {
		if d := math.Abs(v[i] - w[i]); d > maxAbs {
			maxAbs = d
		}
	}
	return maxAbs
}

// CosineDistance returns 1 − cosine similarity; see the Cosine metric
// for the zero-vector convention.
func CosineDistance(v, w Vector) float64 {
	assertSameLen(v, w)
	nv, nw := v.Norm(), w.Norm()
	if nv == 0 || nw == 0 {
		return 1
	}
	cos := v.Dot(w) / (nv * nw)
	cos = math.Max(-1, math.Min(1, cos))
	return 1 - cos
}

// EuclideanDistance returns the L2 distance between v and w without
// the metric dispatch; it is the inner loop of BMU search.
func EuclideanDistance(v, w Vector) float64 {
	return math.Sqrt(SquaredEuclidean(v, w))
}

// SquaredEuclidean returns the squared L2 distance. BMU search uses
// the squared form to skip the square root.
func SquaredEuclidean(v, w Vector) float64 {
	assertSameLen(v, w)
	sum := 0.0
	for i := range v {
		d := v[i] - w[i]
		sum += d * d
	}
	return sum
}

// DistanceMatrix returns the symmetric len(points)×len(points) matrix
// of pairwise distances under metric m, with a zero diagonal.
func DistanceMatrix(m Metric, points []Vector) *Matrix {
	return DistanceMatrixP(m, points, 1)
}

// distanceMatrixShardRows is the row-shard width of the parallel
// distance-matrix build. Small shards interleave across workers, which
// balances the triangular workload (early rows carry more pairs than
// late rows).
const distanceMatrixShardRows = 8

// DistanceMatrixP is DistanceMatrix sharded across `workers`
// goroutines. Every entry is a pure function of one point pair and
// each pair is written by exactly one shard, so the matrix is
// identical for any worker count.
func DistanceMatrixP(m Metric, points []Vector, workers int) *Matrix {
	out, _ := DistanceMatrixCtx(context.Background(), m, points, workers)
	return out
}

// DistanceMatrixCtx is DistanceMatrixP with cooperative cancellation:
// row shards not yet started when ctx fires are skipped and the
// context's error returned (the partial matrix must be discarded).
// With a context that never fires it is bit-identical to
// DistanceMatrixP.
func DistanceMatrixCtx(ctx context.Context, m Metric, points []Vector, workers int) (*Matrix, error) {
	n := len(points)
	out := NewMatrix(n, n)
	// One dispatch per call, not one per pair.
	kern := m.Kernel()
	_, err := par.FixedShardsCtx(ctx, workers, n, distanceMatrixShardRows, func(_, start, end int) {
		for i := start; i < end; i++ {
			for j := i + 1; j < n; j++ {
				d := kern(points[i], points[j])
				out.Set(i, j, d)
				out.Set(j, i, d)
			}
		}
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}
