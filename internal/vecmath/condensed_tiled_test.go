package vecmath

import (
	"math"
	"testing"
)

// TestCondensedTiledMatchesRowMajor proves the tiled build is
// bit-identical to the retained row-major reference for every metric,
// for sizes on both sides of the tile boundary, and for every worker
// count — byte-for-byte, not approximately.
func TestCondensedTiledMatchesRowMajor(t *testing.T) {
	for _, n := range []int{1, 2, 3, 17, condensedTile - 1, condensedTile, condensedTile + 1, 300} {
		pts := condensedTestPoints(n, 6, uint64(n)+11)
		for _, m := range []Metric{Euclidean, Manhattan, Chebyshev, Cosine} {
			want := condensedDistanceRowMajor(m, pts)
			for _, workers := range []int{1, 2, 8} {
				got := CondensedDistanceMatrixP(m, pts, workers)
				if got.N() != want.N() {
					t.Fatalf("n=%d %v workers=%d: N=%d, want %d", n, m, workers, got.N(), want.N())
				}
				for s, v := range got.Data() {
					if v != want.Data()[s] {
						t.Fatalf("n=%d %v workers=%d: slot %d = %v, want %v (not bit-identical)",
							n, m, workers, s, v, want.Data()[s])
					}
				}
			}
		}
	}
}

// TestCondensed32ToleranceBound checks the documented Condensed32
// error bound: each entry is the float64 distance rounded once to
// nearest float32, so |widened − exact| ≤ |exact|·2⁻²⁴ (binary32 unit
// roundoff) on every pair. Also proves the float32 build is identical
// across worker counts.
func TestCondensed32ToleranceBound(t *testing.T) {
	const u = 1.0 / (1 << 24)
	for _, n := range []int{5, condensedTile + 7} {
		pts := condensedTestPoints(n, 6, uint64(n)+23)
		for _, m := range []Metric{Euclidean, Manhattan, Chebyshev, Cosine} {
			exact := condensedDistanceRowMajor(m, pts)
			got := Condensed32DistanceMatrix(m, pts)
			for s, v32 := range got.Data() {
				e := exact.Data()[s]
				if diff := math.Abs(float64(v32) - e); diff > math.Abs(e)*u {
					t.Fatalf("n=%d %v: slot %d = %v, exact %v, err %g exceeds %g",
						n, m, s, v32, e, diff, math.Abs(e)*u)
				}
				// Rounding must be exactly round-to-nearest of the exact
				// value, not a differently-ordered float32 accumulation.
				if v32 != float32(e) {
					t.Fatalf("n=%d %v: slot %d = %v, want float32(%v) = %v",
						n, m, s, v32, e, float32(e))
				}
			}
			for _, workers := range []int{2, 8} {
				gp := Condensed32DistanceMatrixP(m, pts, workers)
				for s, v := range gp.Data() {
					if v != got.Data()[s] {
						t.Fatalf("n=%d %v workers=%d: slot %d differs from serial", n, m, workers, s)
					}
				}
			}
		}
	}
}
