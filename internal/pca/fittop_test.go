package pca

import (
	"errors"
	"math"
	"testing"

	"hmeans/internal/rng"
)

func randomRows(n, d int, seed uint64) [][]float64 {
	r := rng.New(seed)
	rows := make([][]float64, n)
	for i := range rows {
		rows[i] = make([]float64, d)
		for j := range rows[i] {
			rows[i][j] = r.NormFloat64() * float64(j%5+1)
		}
	}
	return rows
}

func TestFitTopMatchesFit(t *testing.T) {
	rows := randomRows(30, 8, 3)
	exact, err := Fit(rows, 2)
	if err != nil {
		t.Fatal(err)
	}
	fast, err := FitTop(rows, 2, 7)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(fast.TotalVariance, exact.TotalVariance, 1e-9) {
		t.Fatalf("total variance %v vs %v", fast.TotalVariance, exact.TotalVariance)
	}
	for c := 0; c < 2; c++ {
		if !almostEqual(fast.Variances[c], exact.Variances[c], 1e-6) {
			t.Fatalf("component %d variance %v vs %v", c, fast.Variances[c], exact.Variances[c])
		}
		dot := 0.0
		for j := range fast.Components[c] {
			dot += fast.Components[c][j] * exact.Components[c][j]
		}
		if !almostEqual(math.Abs(dot), 1, 1e-5) {
			t.Fatalf("component %d direction |cos| = %v", c, math.Abs(dot))
		}
	}
}

func TestFitTopTransform(t *testing.T) {
	rows := line2D(100, 0.05, 9)
	m, err := FitTop(rows, 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	if m.ExplainedVariance()[0] < 0.99 {
		t.Fatalf("explained variance %v", m.ExplainedVariance()[0])
	}
	scores, err := m.Transform(rows)
	if err != nil {
		t.Fatal(err)
	}
	sum := 0.0
	for _, s := range scores {
		sum += s[0]
	}
	if math.Abs(sum/float64(len(scores))) > 1e-9 {
		t.Fatal("scores not centered")
	}
}

func TestFitTopErrors(t *testing.T) {
	if _, err := FitTop([][]float64{{1, 2}}, 1, 1); err == nil {
		t.Error("single observation accepted")
	}
	if _, err := FitTop(randomRows(5, 3, 1), 4, 1); !errors.Is(err, ErrTooFewComponents) {
		t.Error("k > features accepted")
	}
	if _, err := FitTop(randomRows(5, 3, 1), 0, 1); !errors.Is(err, ErrTooFewComponents) {
		t.Error("k = 0 accepted")
	}
}
