package pca

import (
	"errors"
	"math"
	"testing"
	"testing/quick"

	"hmeans/internal/rng"
)

func almostEqual(a, b, tol float64) bool {
	return math.Abs(a-b) <= tol*math.Max(1, math.Max(math.Abs(a), math.Abs(b)))
}

// line2D samples points along y = 2x with tiny orthogonal jitter: the
// first principal component must align with (1,2)/√5.
func line2D(n int, jitter float64, seed uint64) [][]float64 {
	r := rng.New(seed)
	rows := make([][]float64, n)
	for i := range rows {
		t := r.NormFloat64() * 5
		j := r.NormFloat64() * jitter
		// jitter orthogonal to (1,2): direction (-2,1)/√5
		rows[i] = []float64{t - 2*j/math.Sqrt(5), 2*t + j/math.Sqrt(5)}
	}
	return rows
}

func TestFitRecoversLineDirection(t *testing.T) {
	m, err := Fit(line2D(200, 0.01, 1), 2)
	if err != nil {
		t.Fatal(err)
	}
	c := m.Components[0]
	// Up to sign, c ≈ (1,2)/√5.
	want0, want1 := 1/math.Sqrt(5), 2/math.Sqrt(5)
	if !almostEqual(math.Abs(c[0]), want0, 1e-2) || !almostEqual(math.Abs(c[1]), want1, 1e-2) {
		t.Fatalf("first component = %v, want ±(%v, %v)", c, want0, want1)
	}
	ev := m.ExplainedVariance()
	if ev[0] < 0.999 {
		t.Fatalf("first component explains %v, want >0.999", ev[0])
	}
}

func TestFitErrors(t *testing.T) {
	if _, err := Fit([][]float64{{1, 2}}, 1); err == nil {
		t.Error("single observation accepted")
	}
	if _, err := Fit([][]float64{{1, 2}, {3, 4}}, 3); !errors.Is(err, ErrTooFewComponents) {
		t.Error("k > features accepted")
	}
	if _, err := Fit([][]float64{{1, 2}, {3, 4}}, 0); !errors.Is(err, ErrTooFewComponents) {
		t.Error("k = 0 accepted")
	}
}

func TestTransformCentersData(t *testing.T) {
	rows := line2D(100, 0.5, 2)
	scores, _, err := FitTransform(rows, 2)
	if err != nil {
		t.Fatal(err)
	}
	// Projected scores must have zero mean per component.
	for j := 0; j < 2; j++ {
		sum := 0.0
		for _, s := range scores {
			sum += s[j]
		}
		if math.Abs(sum/float64(len(scores))) > 1e-9 {
			t.Fatalf("component %d scores not centered: mean %v", j, sum/float64(len(scores)))
		}
	}
}

func TestTransformDimensionMismatch(t *testing.T) {
	m, err := Fit([][]float64{{1, 2}, {3, 4}, {5, 7}}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Transform([][]float64{{1, 2, 3}}); err == nil {
		t.Error("wrong-width observation accepted")
	}
}

func TestExplainedVarianceSumsBelowOne(t *testing.T) {
	rows := line2D(50, 2, 3)
	m, err := Fit(rows, 1)
	if err != nil {
		t.Fatal(err)
	}
	ev := m.ExplainedVariance()
	if len(ev) != 1 || ev[0] <= 0 || ev[0] > 1 {
		t.Fatalf("explained variance = %v, want single value in (0,1]", ev)
	}
}

func TestZeroVarianceData(t *testing.T) {
	rows := [][]float64{{1, 1}, {1, 1}, {1, 1}}
	m, err := Fit(rows, 2)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range m.ExplainedVariance() {
		if v != 0 {
			t.Fatalf("explained variance of constant data = %v, want zeros", m.ExplainedVariance())
		}
	}
	scores, err := m.Transform(rows)
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range scores {
		for _, s := range row {
			if s != 0 {
				t.Fatalf("constant data projected to non-zero score %v", s)
			}
		}
	}
}

// Property: projection scores' variance equals the component's
// eigenvalue (full-rank fit on random data).
func TestScoreVarianceMatchesEigenvalue(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		n, d := 40, 3
		rows := make([][]float64, n)
		for i := range rows {
			rows[i] = []float64{r.NormFloat64(), r.NormFloat64() * 2, r.NormFloat64() * 0.5}
		}
		scores, m, err := FitTransform(rows, d)
		if err != nil {
			return false
		}
		for j := 0; j < d; j++ {
			var sum, sumSq float64
			for _, s := range scores {
				sum += s[j]
				sumSq += s[j] * s[j]
			}
			mean := sum / float64(n)
			variance := sumSq/float64(n) - mean*mean
			if !almostEqual(variance, m.Variances[j], 1e-6) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: pairwise distances are preserved by a full-rank PCA
// rotation (orthogonal transform).
func TestFullRankPCAPreservesDistances(t *testing.T) {
	r := rng.New(7)
	n, d := 15, 4
	rows := make([][]float64, n)
	for i := range rows {
		rows[i] = make([]float64, d)
		for j := range rows[i] {
			rows[i][j] = r.NormFloat64() * 3
		}
	}
	scores, _, err := FitTransform(rows, d)
	if err != nil {
		t.Fatal(err)
	}
	dist := func(a, b []float64) float64 {
		s := 0.0
		for i := range a {
			s += (a[i] - b[i]) * (a[i] - b[i])
		}
		return math.Sqrt(s)
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if !almostEqual(dist(rows[i], rows[j]), dist(scores[i], scores[j]), 1e-7) {
				t.Fatalf("distance (%d,%d) not preserved", i, j)
			}
		}
	}
}
