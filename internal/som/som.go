// Package som implements the Self-Organizing Map (Kohonen map) used
// by the paper as its dimension-reduction stage.
//
// A SOM is a 2-D grid of units; each unit i carries a weight vector
// w_i in the input space and a fixed location vector r_i on the grid.
// Training is competitive: for each input x the best matching unit
// (BMU) — the unit whose weight is nearest in Euclidean distance — and
// its grid neighbours are pulled toward x:
//
//	w_i(n+1) = w_i(n) + h_ci(n) [x(n) − w_i(n)]
//	h_ci(n)  = α(n) · exp(−‖r_c − r_i‖² / 2σ²(n))
//
// with learning rate α(n) and neighbourhood radius σ(n) both
// monotonically decreasing in the step number n, exactly the update
// rule of the paper's Section III-A. After training, each workload
// maps to its BMU cell; workloads that share or neighbour a cell are
// similar in the original high-dimensional space.
package som

import (
	"errors"
	"fmt"
	"math"

	"hmeans/internal/obs"
	"hmeans/internal/vecmath"
)

// Config describes a map and its training regime.
type Config struct {
	// Rows and Cols give the unit-grid shape. The paper uses small
	// 2-D maps (its figures are ~10×10).
	Rows, Cols int
	// Steps is the number of sequential training steps (input
	// presentations). If zero, 500 × number of units is used, a
	// common heuristic from Kohonen's SOM_PAK.
	Steps int
	// Alpha0 is the initial learning-rate factor α(0). Zero means
	// 0.5.
	Alpha0 float64
	// Sigma0 is the initial neighbourhood radius σ(0) in grid cells.
	// Zero means half the larger grid dimension.
	Sigma0 float64
	// LearningDecay selects the α(n) schedule (default Exponential).
	LearningDecay Decay
	// RadiusDecay selects the σ(n) schedule (default Exponential).
	RadiusDecay Decay
	// Init selects weight initialization (default InitPCA, falling
	// back to random when the data cannot support a PCA plane).
	Init InitMode
	// SigmaFinal is the neighbourhood radius at the end of training.
	// Zero means the package floor (0.75). Larger values keep the
	// weight surface smoother, which limits how much grid area a
	// tight blob of samples can claim.
	SigmaFinal float64
	// Algorithm selects the training algorithm: Sequential is the
	// paper's classic on-line competitive loop; Batch recomputes all
	// weights per epoch as kernel-weighted sample means, is fully
	// deterministic, and avoids grid-magnification of tight sample
	// blobs (see trainBatch). Default Sequential.
	Algorithm Algorithm
	// BatchEpochs fixes the number of batch epochs directly. Zero
	// derives the epoch count from Steps (Steps / len(samples),
	// clamped to [10, 200]). Sequential training ignores it.
	BatchEpochs int
	// Parallelism is the worker count for batch training (and the
	// bulk placement helpers). Values <= 1 run serially. Batch
	// accumulation uses fixed shards reduced in index order, so the
	// trained map is bit-identical for every parallelism level —
	// Parallelism trades wall-clock time only, never results.
	// Sequential training is inherently order-dependent and ignores
	// this field.
	Parallelism int
	// BMU selects the best-matching-unit search strategy (default
	// BMUSearchAuto: brute below bmuPruneMinUnits units, pruned exact
	// search above). Auto, brute and pruned all return identical
	// results — the choice trades speed only. BMUSearchCoarse is the
	// opt-in approximate mode and applies to post-training queries
	// (placements, quality measures) only; training itself always
	// runs an exact search so the trained weights never depend on an
	// approximation.
	BMU BMUSearch
	// Seed drives sample-selection order and random initialization.
	Seed uint64
	// Obs receives training telemetry: a som.train span plus
	// per-epoch events (quantization error, neighbourhood radius)
	// for batch training and periodic som.step events for sequential
	// training. Nil falls back to the process-default observer;
	// instrumentation never affects the trained weights.
	Obs *obs.Observer
}

// Algorithm selects the SOM training procedure.
type Algorithm int

const (
	// Sequential is classic on-line competitive learning (the
	// paper's pseudo code).
	Sequential Algorithm = iota
	// Batch is the deterministic batch-update variant.
	Batch
)

// String returns the algorithm's name.
func (a Algorithm) String() string {
	switch a {
	case Sequential:
		return "sequential"
	case Batch:
		return "batch"
	default:
		return "unknown"
	}
}

// InitMode selects the weight initialization strategy.
type InitMode int

const (
	// InitPCA spans the grid across the plane of the two leading
	// principal components (the paper's choice). Falls back to
	// InitRandom when the inputs have fewer than two usable
	// components (e.g. fewer than three samples).
	InitPCA InitMode = iota
	// InitRandom draws each weight from a small Gaussian around the
	// data mean.
	InitRandom
)

// GridFor returns a recommended grid shape for n samples using the
// SOM Toolbox heuristic of ≈5√n units. Grids much larger than this
// (e.g. 100 units for 13 workloads) magnify tight sample blobs across
// many cells and make the BMU geometry — and therefore the clustering
// the paper builds on it — fragile to the training seed.
func GridFor(n int) (rows, cols int) {
	if n < 1 {
		n = 1
	}
	units := int(math.Ceil(5 * math.Sqrt(float64(n))))
	cols = int(math.Sqrt(float64(units)))
	if cols < 2 {
		cols = 2
	}
	rows = (units + cols - 1) / cols
	if rows < 2 {
		rows = 2
	}
	return rows, cols
}

// Map is a trained (or initialized) self-organizing map.
//
// The unit weights live in one contiguous []float64 backing array
// (unit u occupies flat[u*dim : (u+1)*dim]); weights[u] is a view
// into it. Contiguous storage keeps the BMU scan — the innermost loop
// of both training algorithms — walking a single cache-friendly
// array, and makes the whole grid one allocation instead of
// rows×cols+1.
type Map struct {
	rows, cols int
	dim        int
	// flat is the contiguous backing array of every unit weight.
	flat []float64
	// weights[u] is the weight vector of unit u = r*cols + c, a view
	// into flat.
	weights []vecmath.Vector
	// locations[u] is the fixed grid location vector of unit u; views
	// into one contiguous backing array like the weights.
	locations []vecmath.Vector
	// search is the resolved BMU search mode (never BMUSearchAuto);
	// the zero value BMUSearchAuto doubles as "not configured", which
	// the bmu dispatcher treats as brute.
	search BMUSearch
	// index is the pruned search's norm-sorted view of the weights;
	// non-nil exactly while search is pruned AND the weights are
	// frozen. Training drops and rebuilds it around weight updates.
	index *bmuIndex
}

// ErrNoData is returned when training is attempted on an empty
// sample set.
var ErrNoData = errors.New("som: no training samples")

func (c *Config) withDefaults() Config {
	out := *c
	if out.Rows <= 0 {
		out.Rows = 10
	}
	if out.Cols <= 0 {
		out.Cols = 10
	}
	if out.Steps <= 0 {
		out.Steps = 500 * out.Rows * out.Cols
	}
	if out.Alpha0 <= 0 {
		out.Alpha0 = 0.5
	}
	if out.Sigma0 <= 0 {
		big := out.Rows
		if out.Cols > big {
			big = out.Cols
		}
		out.Sigma0 = float64(big) / 2
	}
	return out
}

// newMap allocates the unit grid with zero weights: one contiguous
// backing array per plane (weights, locations) plus the view headers.
func newMap(rows, cols, dim int) *Map {
	units := rows * cols
	m := &Map{
		rows:      rows,
		cols:      cols,
		dim:       dim,
		flat:      make([]float64, units*dim),
		weights:   make([]vecmath.Vector, units),
		locations: make([]vecmath.Vector, units),
	}
	locFlat := make([]float64, units*2)
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			u := r*cols + c
			m.weights[u] = vecmath.Vector(m.flat[u*dim : (u+1)*dim : (u+1)*dim])
			loc := locFlat[u*2 : (u+1)*2 : (u+1)*2]
			loc[0], loc[1] = float64(r), float64(c)
			m.locations[u] = vecmath.Vector(loc)
		}
	}
	return m
}

// Rows returns the grid height.
func (m *Map) Rows() int { return m.rows }

// Cols returns the grid width.
func (m *Map) Cols() int { return m.cols }

// Dim returns the input dimensionality.
func (m *Map) Dim() int { return m.dim }

// Weight returns the weight vector of the unit at grid row r,
// column c. The returned vector is a live view; callers must not
// modify it.
func (m *Map) Weight(r, c int) vecmath.Vector { return m.weights[r*m.cols+c] }

// Location returns the grid location vector of unit (r, c).
func (m *Map) Location(r, c int) vecmath.Vector { return m.locations[r*m.cols+c] }

// BMU returns the grid coordinates of the best matching unit for x:
// the unit minimizing Euclidean distance between x and its weight
// vector. Ties break toward the lower unit index, which keeps
// training deterministic.
func (m *Map) BMU(x vecmath.Vector) (row, col int) {
	u, _ := m.bmu(x)
	return u / m.cols, u % m.cols
}

// bmu returns the best matching unit's index and its squared
// Euclidean distance to x — the distance feeds the per-epoch
// quantization-error telemetry without a second scan. It dispatches
// on the map's resolved search mode; all exact modes (brute, pruned)
// return identical results, see BMUSearch.
func (m *Map) bmu(x vecmath.Vector) (unit int, sqDist float64) {
	if m.index != nil {
		return m.bmuPruned(x)
	}
	if m.search == BMUSearchCoarse {
		return m.bmuCoarse(x)
	}
	return m.bmuBrute(x)
}

// bmuBrute is the reference flat scan over every unit.
//
// The scan walks the contiguous weight array directly with the
// dimension check and metric fixed outside the loop: same squared-
// Euclidean arithmetic as vecmath.SquaredEuclidean in the same
// element order (so the winner — and training — is bit-identical),
// without per-unit slice-header loads or length asserts.
func (m *Map) bmuBrute(x vecmath.Vector) (unit int, sqDist float64) {
	dim := m.dim
	if len(x) != dim {
		panic(fmt.Sprintf("som: input dim %d != map dim %d", len(x), dim))
	}
	flat := m.flat
	best, bestDist := 0, math.Inf(1)
	for u, off := 0, 0; off < len(flat); u, off = u+1, off+dim {
		w := flat[off : off+dim]
		sum := 0.0
		for i, xi := range x {
			d := xi - w[i]
			sum += d * d
		}
		if sum < bestDist {
			best, bestDist = u, sum
		}
	}
	return best, bestDist
}

// secondBMU returns the unit indices of the two closest units, used
// by the topographic-error quality measure.
func (m *Map) twoBMUs(x vecmath.Vector) (first, second int) {
	d0 := vecmath.SquaredEuclidean(x, m.weights[0])
	d1 := vecmath.SquaredEuclidean(x, m.weights[1])
	if d1 < d0 {
		first, second = 1, 0
		d0, d1 = d1, d0
	} else {
		first, second = 0, 1
	}
	for u := 2; u < len(m.weights); u++ {
		d := vecmath.SquaredEuclidean(x, m.weights[u])
		switch {
		case d < d0:
			second, d1 = first, d0
			first, d0 = u, d
		case d < d1:
			second, d1 = u, d
		}
	}
	return first, second
}

// Position returns the BMU grid coordinates of x as a 2-D vector;
// this is the "reduced dimension" the clustering stage consumes.
func (m *Map) Position(x vecmath.Vector) vecmath.Vector {
	r, c := m.BMU(x)
	return vecmath.Vector{float64(r), float64(c)}
}
