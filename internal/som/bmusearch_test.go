package som

import (
	"math"
	"strings"
	"testing"

	"hmeans/internal/rng"
	"hmeans/internal/vecmath"
)

func TestParseBMUSearch(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want BMUSearch
	}{
		{"auto", BMUSearchAuto},
		{"brute", BMUSearchBrute},
		{"pruned", BMUSearchPruned},
		{"coarse", BMUSearchCoarse},
	} {
		got, err := ParseBMUSearch(tc.in)
		if err != nil || got != tc.want {
			t.Fatalf("ParseBMUSearch(%q) = %v, %v; want %v", tc.in, got, err, tc.want)
		}
		if got.String() != tc.in {
			t.Fatalf("%v.String() = %q, want %q", got, got.String(), tc.in)
		}
	}
	if _, err := ParseBMUSearch("fast"); err == nil || !strings.Contains(err.Error(), "fast") {
		t.Fatalf("ParseBMUSearch(fast) err = %v, want unknown-value error naming it", err)
	}
	m := newMap(4, 4, 2)
	if err := m.SetBMUSearch(BMUSearch(9)); err == nil {
		t.Fatal("SetBMUSearch accepted an out-of-range mode")
	}
	if _, err := Train(Config{BMU: BMUSearch(9)}, benchSamples(8, 4)); err == nil {
		t.Fatal("Train accepted an out-of-range BMU mode")
	}
}

// corpusMap builds a map with seeded random weights — including
// deliberate exact-duplicate units, the hardest tie-break case — and
// a matching query corpus: random points, exact unit weights, and
// near-misses one ulp-ish away.
func corpusMap(rows, cols, dim int, seed uint64) (*Map, []vecmath.Vector) {
	r := rng.New(seed)
	m := newMap(rows, cols, dim)
	for i := range m.flat {
		m.flat[i] = r.NormFloat64() * 3
	}
	units := rows * cols
	// Duplicate a handful of units verbatim so several queries have
	// genuinely tied BMU distances.
	for i := 0; i < units/8; i++ {
		src, dst := r.Intn(units), r.Intn(units)
		copy(m.flat[dst*dim:(dst+1)*dim], m.flat[src*dim:(src+1)*dim])
	}
	var queries []vecmath.Vector
	for i := 0; i < 200; i++ {
		q := vecmath.NewVector(dim)
		for j := range q {
			q[j] = r.NormFloat64() * 3
		}
		queries = append(queries, q)
	}
	for u := 0; u < units; u += 3 {
		queries = append(queries, m.weights[u].Clone())
		near := m.weights[u].Clone()
		near[0] += 1e-13
		queries = append(queries, near)
	}
	return m, queries
}

// TestPrunedBMUMatchesBrute is the satellite property test: on every
// query of the seeded corpus — random points, exact weight matches,
// near-ulp misses, duplicate units — the pruned search must return
// the same unit AND the same squared distance as the brute scan,
// lowest-index tie-break included.
func TestPrunedBMUMatchesBrute(t *testing.T) {
	for seed := uint64(1); seed <= 5; seed++ {
		for _, shape := range [][3]int{{9, 7, 5}, {16, 16, 12}, {3, 4, 2}} {
			m, queries := corpusMap(shape[0], shape[1], shape[2], seed)
			if err := m.SetBMUSearch(BMUSearchPruned); err != nil {
				t.Fatal(err)
			}
			for qi, q := range queries {
				bu, bd := m.bmuBrute(q)
				pu, pd := m.bmuPruned(q)
				if pu != bu || pd != bd {
					t.Fatalf("seed %d shape %v query %d: pruned (%d, %v), brute (%d, %v)",
						seed, shape, qi, pu, pd, bu, bd)
				}
			}
		}
	}
}

// TestTrainedMapIdenticalAcrossExactModes proves the exact search
// modes interchangeable end to end: batch training under brute,
// pruned and auto must converge to bit-identical weights, and the
// coarse mode — exact during training by design — must too.
func TestTrainedMapIdenticalAcrossExactModes(t *testing.T) {
	samples := benchSamples(160, 8)
	cfg := Config{Rows: 12, Cols: 10, Seed: 7, Algorithm: Batch}
	cfg.BMU = BMUSearchBrute
	ref, err := Train(cfg, samples)
	if err != nil {
		t.Fatal(err)
	}
	for _, mode := range []BMUSearch{BMUSearchPruned, BMUSearchAuto, BMUSearchCoarse} {
		cfg.BMU = mode
		got, err := Train(cfg, samples)
		if err != nil {
			t.Fatal(err)
		}
		for i, v := range got.flat {
			if v != ref.flat[i] {
				t.Fatalf("mode %v: weight %d = %v, want %v (not bit-identical)", mode, i, v, ref.flat[i])
			}
		}
	}
}

// TestCoarseBMUQualityBound measures the opt-in approximate mode on a
// seeded trained map and pins its quality: the fraction of queries
// where coarse agrees with the exact BMU, and the inflation of the
// mean sample→unit distance. The asserted floors are deliberately
// looser than the measured values recorded in DESIGN.md §15, so the
// test fails only on a real regression, not on noise.
func TestCoarseBMUQualityBound(t *testing.T) {
	samples := benchSamples(400, 8)
	m, err := Train(Config{Rows: 20, Cols: 20, Seed: 3, Algorithm: Batch}, samples)
	if err != nil {
		t.Fatal(err)
	}
	exact, approx := 0, 0
	var dExact, dCoarse float64
	for _, x := range samples {
		bu, bd := m.bmuBrute(x)
		cu, cd := m.bmuCoarse(x)
		if cd < bd {
			t.Fatalf("coarse distance %v below exact minimum %v", cd, bd)
		}
		approx++
		if cu == bu {
			exact++
		}
		dExact += math.Sqrt(bd)
		dCoarse += math.Sqrt(cd)
	}
	matchFrac := float64(exact) / float64(approx)
	inflation := dCoarse / math.Max(dExact, 1e-300)
	t.Logf("coarse BMU: exact-match fraction %.3f, QE inflation %.4f", matchFrac, inflation)
	if matchFrac < 0.9 {
		t.Fatalf("coarse exact-match fraction %.3f, want >= 0.9", matchFrac)
	}
	if inflation > 1.05 {
		t.Fatalf("coarse QE inflation %.4f, want <= 1.05", inflation)
	}
}

// TestSetBMUSearchAutoPolicy pins the auto threshold: small grids
// stay brute (no index), large grids get the pruned index.
func TestSetBMUSearchAutoPolicy(t *testing.T) {
	small := newMap(5, 4, 3)
	if err := small.SetBMUSearch(BMUSearchAuto); err != nil {
		t.Fatal(err)
	}
	if small.search != BMUSearchBrute || small.index != nil {
		t.Fatalf("small grid resolved to %v (index %v), want brute without index", small.search, small.index != nil)
	}
	big := newMap(8, 8, 3)
	if err := big.SetBMUSearch(BMUSearchAuto); err != nil {
		t.Fatal(err)
	}
	if big.search != BMUSearchPruned || big.index == nil {
		t.Fatalf("big grid resolved to %v (index %v), want pruned with index", big.search, big.index != nil)
	}
}
