package som

import (
	"fmt"
	"math"
	"sort"

	"hmeans/internal/vecmath"
)

// BMUSearch selects the best-matching-unit search strategy — the
// innermost loop of training, placement and the quality measures.
type BMUSearch int

const (
	// BMUSearchAuto (the default) picks per map: the brute scan below
	// bmuPruneMinUnits, the pruned exact search at or above it. Both
	// return identical results, so auto is a pure speed policy.
	BMUSearchAuto BMUSearch = iota
	// BMUSearchBrute forces the flat scan over every unit — the
	// reference every fast path is proven against.
	BMUSearchBrute
	// BMUSearchPruned forces the triangle-inequality pruned search:
	// units sorted by weight-vector norm, expanded outward from the
	// query's norm, each side abandoned once (‖x‖−‖w‖)² — a lower
	// bound on ‖x−w‖² — exceeds the best distance found. Exact: it
	// returns the same unit as the brute scan on every query,
	// including the lowest-index tie-break.
	BMUSearchPruned
	// BMUSearchCoarse is the opt-in approximate mode: a strided
	// coarse pass over the grid picks a starting cell, then an exact
	// scan of the surrounding window returns the winner. Queries can
	// land on a nearby unit instead of the true BMU (the measured
	// quality bound lives in TestCoarseBMUQualityBound and DESIGN.md
	// §15), so it never participates in training — only post-training
	// placements and quality measures — and only when selected
	// explicitly.
	BMUSearchCoarse
)

// String returns the mode's flag spelling.
func (s BMUSearch) String() string {
	switch s {
	case BMUSearchAuto:
		return "auto"
	case BMUSearchBrute:
		return "brute"
	case BMUSearchPruned:
		return "pruned"
	case BMUSearchCoarse:
		return "coarse"
	default:
		return "unknown"
	}
}

// ParseBMUSearch maps a -som.bmu flag value to a BMUSearch.
func ParseBMUSearch(s string) (BMUSearch, error) {
	switch s {
	case "auto":
		return BMUSearchAuto, nil
	case "brute":
		return BMUSearchBrute, nil
	case "pruned":
		return BMUSearchPruned, nil
	case "coarse":
		return BMUSearchCoarse, nil
	default:
		return 0, fmt.Errorf("unknown BMU search mode %q (want auto, brute, pruned or coarse)", s)
	}
}

// bmuPruneMinUnits is the unit count at which BMUSearchAuto switches
// from the brute scan to the pruned search. Below it the whole weight
// array fits in a few cache lines and the sort/binary-search overhead
// of the index buys nothing; the paper's ~5√n grid heuristic crosses
// it around n ≈ 160 samples.
const bmuPruneMinUnits = 64

// bmuIndex is the pruned search's precomputed view of a frozen weight
// array: unit norms ascending, with the owning unit of each entry.
// Weights mutate during training, so the index is rebuilt at every
// safe point (each batch epoch boundary, end of training) and must
// never exist while weights are being written.
type bmuIndex struct {
	norms []float64
	ids   []int
}

// buildBMUIndex sorts the units by weight-vector norm. Equal norms
// keep ascending unit order (stable sort), which the pruned search's
// tie-break relies on never mattering: it compares candidate unit ids
// directly.
func (m *Map) buildBMUIndex() *bmuIndex {
	units := len(m.weights)
	raw := make([]float64, units)
	for u, w := range m.weights {
		s := 0.0
		for _, v := range w {
			s += v * v
		}
		raw[u] = math.Sqrt(s)
	}
	ids := make([]int, units)
	for i := range ids {
		ids[i] = i
	}
	sort.SliceStable(ids, func(a, b int) bool { return raw[ids[a]] < raw[ids[b]] })
	norms := make([]float64, units)
	for k, u := range ids {
		norms[k] = raw[u]
	}
	return &bmuIndex{norms: norms, ids: ids}
}

// resolveBMUSearch collapses BMUSearchAuto to a concrete mode for
// this map's size.
func (m *Map) resolveBMUSearch(mode BMUSearch) BMUSearch {
	if mode != BMUSearchAuto {
		return mode
	}
	if len(m.weights) >= bmuPruneMinUnits {
		return BMUSearchPruned
	}
	return BMUSearchBrute
}

// SetBMUSearch selects the BMU search strategy for subsequent queries
// (Position, Placements, the quality measures), building or dropping
// the pruned index as needed. Train applies Config.BMU automatically;
// this entry point serves maps loaded from disk and tests.
func (m *Map) SetBMUSearch(mode BMUSearch) error {
	switch mode {
	case BMUSearchAuto, BMUSearchBrute, BMUSearchPruned, BMUSearchCoarse:
	default:
		return fmt.Errorf("som: unknown BMU search mode %d", int(mode))
	}
	resolved := m.resolveBMUSearch(mode)
	m.search = resolved
	if resolved == BMUSearchPruned {
		m.index = m.buildBMUIndex()
	} else {
		m.index = nil
	}
	return nil
}

// bmuPruneBound is the pruning threshold for the current best squared
// distance: a side of the norm-sorted expansion is abandoned when its
// norm gap squared exceeds it. In exact arithmetic gap² ≤ ‖x−w‖²
// (reverse triangle inequality), so pruning at exactly best would
// already be safe; the relative and norm-scaled absolute slack absorb
// the rounding of the two norm computations, keeping the prune
// strictly conservative — a pruned unit can never have beaten or tied
// the running best — which is what makes the search exact, tie-break
// included.
func bmuPruneBound(best, xSq float64) float64 {
	return best*(1+1e-9) + 1e-12*(1+xSq)
}

// bmuPruned is the exact pruned BMU search; see BMUSearchPruned. The
// candidate distance loop is byte-for-byte the brute scan's
// arithmetic, so any unit both paths evaluate gets the identical
// squared distance; the comparison accepts a tie only from a
// lower-index unit, reproducing the brute scan's first-minimal
// winner.
func (m *Map) bmuPruned(x vecmath.Vector) (unit int, sqDist float64) {
	dim := m.dim
	if len(x) != dim {
		panic(fmt.Sprintf("som: input dim %d != map dim %d", len(x), dim))
	}
	idx := m.index
	xSq := 0.0
	for _, v := range x {
		xSq += v * v
	}
	xn := math.Sqrt(xSq)
	norms, ids, flat := idx.norms, idx.ids, m.flat
	lo := sort.SearchFloat64s(norms, xn) - 1
	hi := lo + 1
	bestU, best := -1, math.Inf(1)
	for lo >= 0 || hi < len(norms) {
		// Expand the side with the smaller norm gap. Gaps grow
		// monotonically outward on each side, so once the smaller gap
		// fails the bound both sides are exhausted.
		gapLo, gapHi := math.Inf(1), math.Inf(1)
		if lo >= 0 {
			gapLo = xn - norms[lo]
		}
		if hi < len(norms) {
			gapHi = norms[hi] - xn
		}
		var k int
		if gapLo <= gapHi {
			if gapLo*gapLo > bmuPruneBound(best, xSq) {
				break
			}
			k, lo = lo, lo-1
		} else {
			if gapHi*gapHi > bmuPruneBound(best, xSq) {
				break
			}
			k, hi = hi, hi+1
		}
		u := ids[k]
		w := flat[u*dim : u*dim+dim]
		sum := 0.0
		for i, xi := range x {
			d := xi - w[i]
			sum += d * d
		}
		if sum < best || (sum == best && u < bestU) {
			bestU, best = u, sum
		}
	}
	return bestU, best
}

// coarseStrideFor sizes the coarse pass: sampling every s-th row and
// column with s ≈ √(smaller grid side)/2 balances the coarse scan
// (units/s²) against the refine window ((4s+1)²) while keeping the
// probe lattice dense enough that the true BMU usually sits inside
// the window of the best probe — a trained SOM's weight surface is
// locally smooth, but only locally.
func coarseStrideFor(rows, cols int) int {
	minDim := rows
	if cols < minDim {
		minDim = cols
	}
	s := int(math.Sqrt(float64(minDim)) / 2)
	if s < 2 {
		s = 2
	}
	return s
}

// bmuCoarse is the opt-in approximate search; see BMUSearchCoarse.
// The coarse pass scans the strided subgrid exactly (same arithmetic
// as the brute scan), then the window around the coarse winner is
// scanned exactly in row-major order, so within the window the
// lowest-index tie-break matches the brute scan.
func (m *Map) bmuCoarse(x vecmath.Vector) (unit int, sqDist float64) {
	dim := m.dim
	if len(x) != dim {
		panic(fmt.Sprintf("som: input dim %d != map dim %d", len(x), dim))
	}
	flat := m.flat
	s := coarseStrideFor(m.rows, m.cols)
	dist := func(u int) float64 {
		w := flat[u*dim : u*dim+dim]
		sum := 0.0
		for i, xi := range x {
			d := xi - w[i]
			sum += d * d
		}
		return sum
	}
	// Track the best few probes, not just the winner: a trained map's
	// weight surface can fold, leaving the true BMU near a runner-up
	// probe, so each of the top coarseProbes gets a refine window.
	var probes [coarseProbes]int
	var probeD [coarseProbes]float64
	for i := range probes {
		probes[i], probeD[i] = -1, math.Inf(1)
	}
	for gr := 0; gr < m.rows; gr += s {
		for gc := 0; gc < m.cols; gc += s {
			u := gr*m.cols + gc
			d := dist(u)
			for i := 0; i < coarseProbes; i++ {
				if d < probeD[i] {
					copy(probeD[i+1:], probeD[i:coarseProbes-1])
					copy(probes[i+1:], probes[i:coarseProbes-1])
					probes[i], probeD[i] = u, d
					break
				}
			}
		}
	}
	bestU, best := -1, math.Inf(1)
	for _, probe := range probes {
		if probe < 0 {
			continue
		}
		br, bc := probe/m.cols, probe%m.cols
		r0, r1 := maxInt(0, br-2*s), minInt(m.rows-1, br+2*s)
		c0, c1 := maxInt(0, bc-2*s), minInt(m.cols-1, bc+2*s)
		for gr := r0; gr <= r1; gr++ {
			for gc := c0; gc <= c1; gc++ {
				u := gr*m.cols + gc
				if d := dist(u); d < best || (d == best && u < bestU) {
					bestU, best = u, d
				}
			}
		}
	}
	return bestU, best
}

// coarseProbes is how many coarse-pass winners get an exact refine
// window; see bmuCoarse.
const coarseProbes = 3
