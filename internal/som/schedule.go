package som

import "math"

// Decay selects how the learning rate α(n) and neighbourhood radius
// σ(n) shrink over training. Both must decrease monotonically (the
// paper's requirement); each schedule maps the training progress
// t = n/Steps ∈ [0, 1) to a multiplier in (0, 1].
type Decay int

const (
	// DecayExponential is v(t) = v0 · exp(−t·ln(v0/vFinal)): smooth
	// geometric annealing, the default.
	DecayExponential Decay = iota
	// DecayLinear is v(t) = v0 · (1 − t) + vFinal · t.
	DecayLinear
	// DecayInverse is v(t) = v0 / (1 + 9t): the 1/n-style schedule of
	// Kohonen's original formulation.
	DecayInverse
)

// String returns the schedule's name.
func (d Decay) String() string {
	switch d {
	case DecayExponential:
		return "exponential"
	case DecayLinear:
		return "linear"
	case DecayInverse:
		return "inverse"
	default:
		return "unknown"
	}
}

// floors keep the kernel non-degenerate at the end of training: the
// radius must stay positive (σ→0 divides by zero in the kernel) and a
// zero learning rate would waste the final steps entirely.
const (
	alphaFloor = 0.01
	sigmaFloor = 0.35
)

// value returns the annealed value at progress t ∈ [0, 1) given the
// initial value v0 and the floor.
func (d Decay) value(v0, floor, t float64) float64 {
	if v0 <= floor {
		return floor
	}
	var v float64
	switch d {
	case DecayLinear:
		v = v0*(1-t) + floor*t
	case DecayInverse:
		v = v0 / (1 + 9*t)
	default: // DecayExponential
		v = v0 * math.Exp(-t*math.Log(v0/floor))
	}
	if v < floor {
		return floor
	}
	return v
}
