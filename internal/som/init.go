package som

import (
	"math"

	"hmeans/internal/pca"
	"hmeans/internal/rng"
	"hmeans/internal/vecmath"
)

// initRandom seeds every unit weight from a Gaussian centred on the
// data mean with the data's per-feature scale.
func (m *Map) initRandom(samples []vecmath.Vector, r *rng.Source) {
	mean := vecmath.NewVector(m.dim)
	for _, s := range samples {
		mean.AXPYInPlace(1/float64(len(samples)), s)
	}
	scale := vecmath.NewVector(m.dim)
	for _, s := range samples {
		for j := range scale {
			d := s[j] - mean[j]
			scale[j] += d * d
		}
	}
	for j := range scale {
		scale[j] = math.Sqrt(scale[j]/float64(len(samples))) + 1e-6
	}
	for _, w := range m.weights {
		for j := range w {
			w[j] = mean[j] + 0.3*scale[j]*r.NormFloat64()
		}
	}
}

// initPCA spans the grid linearly across the plane of the two major
// principal components, the paper's initialization: unit (row, col)
// starts at mean + u·√λ1·pc1 + v·√λ2·pc2 with u, v ∈ [−1, 1]. It
// reports whether the initialization succeeded; failure (degenerate
// data) leaves the weights untouched so the caller can fall back to
// random initialization.
func (m *Map) initPCA(samples []vecmath.Vector) bool {
	if len(samples) < 3 || m.dim < 2 {
		return false
	}
	rows := make([][]float64, len(samples))
	for i, s := range samples {
		rows[i] = s
	}
	// Power iteration extracts just the two components the plane
	// needs — much cheaper than a full eigendecomposition when the
	// characterization has hundreds of features. Fall back to the
	// exact Jacobi path if it fails to converge (e.g. two leading
	// eigenvalues nearly tied).
	model, err := pca.FitTop(rows, 2, 0x50b0)
	if err != nil {
		if model, err = pca.Fit(rows, 2); err != nil {
			return false
		}
	}
	s1 := math.Sqrt(model.Variances[0])
	s2 := math.Sqrt(model.Variances[1])
	if s1 == 0 {
		return false
	}
	if s2 == 0 {
		// Rank-1 data: stretch the second axis a little so units do
		// not start exactly collinear.
		s2 = s1 / 10
	}
	for gr := 0; gr < m.rows; gr++ {
		for gc := 0; gc < m.cols; gc++ {
			u, v := gridSpan(gr, m.rows), gridSpan(gc, m.cols)
			w := m.weights[gr*m.cols+gc]
			for j := range w {
				w[j] = model.Means[j] + u*s1*model.Components[0][j] + v*s2*model.Components[1][j]
			}
		}
	}
	return true
}

// gridSpan maps index i of an n-long axis to [−1, 1].
func gridSpan(i, n int) float64 {
	if n == 1 {
		return 0
	}
	return 2*float64(i)/float64(n-1) - 1
}
