package som

import (
	"testing"

	"hmeans/internal/obs"
	"hmeans/internal/vecmath"
)

func obsSamples() []vecmath.Vector {
	return []vecmath.Vector{
		{0, 0}, {0.1, 0}, {0, 0.1},
		{5, 5}, {5.1, 5}, {5, 5.1},
		{-4, 6}, {-4.1, 6.1},
	}
}

// TestBatchTrainingEmitsEpochs checks that batch training reports one
// som.epoch event per epoch with a finite, eventually-decreasing
// quantization error.
func TestBatchTrainingEmitsEpochs(t *testing.T) {
	col := obs.NewCollector()
	o := obs.New(col)
	cfg := Config{
		Rows: 4, Cols: 4, Algorithm: Batch, BatchEpochs: 20, Seed: 3, Obs: o,
	}
	if _, err := Train(cfg, obsSamples()); err != nil {
		t.Fatal(err)
	}
	tr := col.Trace()
	var qes []float64
	for _, e := range tr.Events {
		if e.Name != "som.epoch" {
			continue
		}
		for _, a := range e.Attrs {
			if a.Key == "qe" {
				qes = append(qes, a.Val.(float64))
			}
		}
	}
	if len(qes) != 20 {
		t.Fatalf("som.epoch events = %d, want 20", len(qes))
	}
	if first, last := qes[0], qes[len(qes)-1]; !(last < first) {
		t.Fatalf("quantization error did not decrease: first %v, last %v", first, last)
	}
	if got := o.Metrics().Counter("som.epochs").Value(); got != 20 {
		t.Fatalf("som.epochs counter = %d", got)
	}
	var trainSpans int
	for _, s := range tr.Spans {
		if s.Name == "som.train" {
			trainSpans++
		}
	}
	if trainSpans != 1 {
		t.Fatalf("som.train spans = %d", trainSpans)
	}
}

// TestSequentialTrainingEmitsCheckpoints checks the som.step
// checkpoint events of the on-line loop: ~32 of them, with the
// learning rate annealing downward.
func TestSequentialTrainingEmitsCheckpoints(t *testing.T) {
	col := obs.NewCollector()
	cfg := Config{
		Rows: 4, Cols: 4, Steps: 640, Seed: 3, Obs: obs.New(col),
	}
	if _, err := Train(cfg, obsSamples()); err != nil {
		t.Fatal(err)
	}
	var alphas []float64
	for _, e := range col.Trace().Events {
		if e.Name != "som.step" {
			continue
		}
		for _, a := range e.Attrs {
			if a.Key == "alpha" {
				alphas = append(alphas, a.Val.(float64))
			}
		}
	}
	if len(alphas) != 32 {
		t.Fatalf("som.step events = %d, want 32", len(alphas))
	}
	if !(alphas[len(alphas)-1] < alphas[0]) {
		t.Fatalf("learning rate did not anneal: first %v, last %v", alphas[0], alphas[len(alphas)-1])
	}
}

// TestInstrumentationPreservesWeights pins the "never affects the
// trained weights" contract for both algorithms.
func TestInstrumentationPreservesWeights(t *testing.T) {
	for _, alg := range []Algorithm{Sequential, Batch} {
		cfg := Config{Rows: 4, Cols: 4, Steps: 640, BatchEpochs: 20, Algorithm: alg, Seed: 7}
		bare, err := Train(cfg, obsSamples())
		if err != nil {
			t.Fatal(err)
		}
		cfg.Obs = obs.New(obs.NewCollector())
		traced, err := Train(cfg, obsSamples())
		if err != nil {
			t.Fatal(err)
		}
		for u := range bare.weights {
			for j := range bare.weights[u] {
				if bare.weights[u][j] != traced.weights[u][j] {
					t.Fatalf("%v: weight [%d][%d] differs: %v vs %v",
						alg, u, j, bare.weights[u][j], traced.weights[u][j])
				}
			}
		}
	}
}
