package som

import (
	"errors"
	"math"
	"testing"

	"hmeans/internal/rng"
	"hmeans/internal/vecmath"
)

// twoBlobs generates two well-separated Gaussian clusters in dim-D.
func twoBlobs(nPer, dim int, sep float64, seed uint64) (samples []vecmath.Vector, labels []int) {
	r := rng.New(seed)
	for b := 0; b < 2; b++ {
		centre := float64(b) * sep
		for i := 0; i < nPer; i++ {
			v := make(vecmath.Vector, dim)
			for j := range v {
				v[j] = centre + 0.3*r.NormFloat64()
			}
			samples = append(samples, v)
			labels = append(labels, b)
		}
	}
	return samples, labels
}

func TestTrainErrors(t *testing.T) {
	if _, err := Train(Config{}, nil); !errors.Is(err, ErrNoData) {
		t.Errorf("empty input err = %v, want ErrNoData", err)
	}
	if _, err := Train(Config{}, []vecmath.Vector{{}}); err == nil {
		t.Error("zero-dim samples accepted")
	}
	if _, err := Train(Config{}, []vecmath.Vector{{1, 2}, {1}}); err == nil {
		t.Error("ragged samples accepted")
	}
}

func TestConfigDefaults(t *testing.T) {
	c := (&Config{}).withDefaults()
	if c.Rows != 10 || c.Cols != 10 {
		t.Errorf("default grid = %dx%d, want 10x10", c.Rows, c.Cols)
	}
	if c.Steps != 500*100 {
		t.Errorf("default steps = %d, want 50000", c.Steps)
	}
	if c.Alpha0 != 0.5 || c.Sigma0 != 5 {
		t.Errorf("default alpha/sigma = %v/%v, want 0.5/5", c.Alpha0, c.Sigma0)
	}
}

func TestTrainDeterministic(t *testing.T) {
	samples, _ := twoBlobs(10, 4, 5, 1)
	cfg := Config{Rows: 6, Cols: 6, Steps: 2000, Seed: 42}
	m1, err := Train(cfg, samples)
	if err != nil {
		t.Fatal(err)
	}
	m2, err := Train(cfg, samples)
	if err != nil {
		t.Fatal(err)
	}
	for r := 0; r < 6; r++ {
		for c := 0; c < 6; c++ {
			w1, w2 := m1.Weight(r, c), m2.Weight(r, c)
			for j := range w1 {
				if w1[j] != w2[j] {
					t.Fatalf("same seed produced different maps at (%d,%d)", r, c)
				}
			}
		}
	}
}

func TestTrainSeparatesBlobs(t *testing.T) {
	samples, labels := twoBlobs(12, 6, 8, 3)
	m, err := Train(Config{Rows: 8, Cols: 8, Steps: 8000, Seed: 7}, samples)
	if err != nil {
		t.Fatal(err)
	}
	// Mean grid position per blob must be far apart relative to the
	// within-blob spread.
	var pos [2][]vecmath.Vector
	for i, s := range samples {
		pos[labels[i]] = append(pos[labels[i]], m.Position(s))
	}
	centroid := func(ps []vecmath.Vector) vecmath.Vector {
		c := vecmath.NewVector(2)
		for _, p := range ps {
			c.AXPYInPlace(1/float64(len(ps)), p)
		}
		return c
	}
	c0, c1 := centroid(pos[0]), centroid(pos[1])
	between := vecmath.EuclideanDistance(c0, c1)
	within := 0.0
	for b, ps := range pos {
		cb := []vecmath.Vector{c0, c1}[b]
		for _, p := range ps {
			within += vecmath.EuclideanDistance(p, cb)
		}
	}
	within /= float64(len(samples))
	if between < 2 {
		t.Fatalf("blob centroids only %.2f cells apart on the map", between)
	}
	if within > between {
		t.Fatalf("within-blob spread %.2f exceeds between-blob distance %.2f", within, between)
	}
}

func TestIdenticalSamplesShareCell(t *testing.T) {
	// The paper: "when two or more workloads are similar enough,
	// they can map to the same unit."
	base := vecmath.Vector{1, 2, 3, 4}
	samples := []vecmath.Vector{
		base.Clone(), base.Clone(), base.Clone(),
		{10, 10, 10, 10}, {-5, 0, 5, 0}, {0, 9, 1, 7},
	}
	m, err := Train(Config{Rows: 7, Cols: 7, Steps: 4000, Seed: 5}, samples)
	if err != nil {
		t.Fatal(err)
	}
	r0, c0 := m.BMU(samples[0])
	for i := 1; i < 3; i++ {
		r, c := m.BMU(samples[i])
		if r != r0 || c != c0 {
			t.Fatalf("identical samples mapped to (%d,%d) and (%d,%d)", r0, c0, r, c)
		}
	}
}

func TestBMUDimMismatchPanics(t *testing.T) {
	samples, _ := twoBlobs(5, 3, 4, 9)
	m, err := Train(Config{Rows: 3, Cols: 3, Steps: 200, Seed: 1}, samples)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("BMU with wrong dim did not panic")
		}
	}()
	m.BMU(vecmath.Vector{1, 2})
}

func TestTrainingReducesQuantizationError(t *testing.T) {
	samples, _ := twoBlobs(15, 5, 6, 11)
	short, err := Train(Config{Rows: 6, Cols: 6, Steps: 30, Seed: 2, Init: InitRandom}, samples)
	if err != nil {
		t.Fatal(err)
	}
	long, err := Train(Config{Rows: 6, Cols: 6, Steps: 6000, Seed: 2, Init: InitRandom}, samples)
	if err != nil {
		t.Fatal(err)
	}
	qShort := short.QuantizationError(samples)
	qLong := long.QuantizationError(samples)
	if qLong >= qShort {
		t.Fatalf("quantization error did not improve with training: %v -> %v", qShort, qLong)
	}
}

func TestHitMapCountsSamples(t *testing.T) {
	samples, _ := twoBlobs(8, 4, 6, 13)
	m, err := Train(Config{Rows: 5, Cols: 5, Steps: 2000, Seed: 3}, samples)
	if err != nil {
		t.Fatal(err)
	}
	hits := m.HitMap(samples)
	total := 0
	for _, row := range hits {
		for _, h := range row {
			if h < 0 {
				t.Fatal("negative hit count")
			}
			total += h
		}
	}
	if total != len(samples) {
		t.Fatalf("hit map total = %d, want %d", total, len(samples))
	}
}

func TestPlacementsMatchBMU(t *testing.T) {
	samples, _ := twoBlobs(6, 3, 5, 17)
	m, err := Train(Config{Rows: 4, Cols: 4, Steps: 1000, Seed: 8}, samples)
	if err != nil {
		t.Fatal(err)
	}
	ps := m.Placements(samples)
	for i, s := range samples {
		r, c := m.BMU(s)
		if ps[i][0] != float64(r) || ps[i][1] != float64(c) {
			t.Fatalf("placement %d = %v, BMU = (%d,%d)", i, ps[i], r, c)
		}
	}
}

func TestQualityMeasuresInRange(t *testing.T) {
	samples, _ := twoBlobs(10, 4, 5, 19)
	m, err := Train(Config{Rows: 6, Cols: 6, Steps: 4000, Seed: 4}, samples)
	if err != nil {
		t.Fatal(err)
	}
	q := m.QuantizationError(samples)
	if q < 0 || math.IsNaN(q) {
		t.Fatalf("quantization error = %v", q)
	}
	te := m.TopographicError(samples)
	if te < 0 || te > 1 {
		t.Fatalf("topographic error = %v, want [0,1]", te)
	}
	// A well-trained map on easy data should have a small
	// topographic error.
	if te > 0.5 {
		t.Fatalf("topographic error %v suspiciously high for easy data", te)
	}
}

func TestQualityOnEmptyInput(t *testing.T) {
	samples, _ := twoBlobs(5, 3, 5, 23)
	m, err := Train(Config{Rows: 3, Cols: 3, Steps: 100, Seed: 6}, samples)
	if err != nil {
		t.Fatal(err)
	}
	if m.QuantizationError(nil) != 0 || m.TopographicError(nil) != 0 {
		t.Fatal("quality measures on empty input should be 0")
	}
}

func TestUMatrixShapeAndPositivity(t *testing.T) {
	samples, _ := twoBlobs(10, 4, 8, 29)
	m, err := Train(Config{Rows: 6, Cols: 5, Steps: 3000, Seed: 9}, samples)
	if err != nil {
		t.Fatal(err)
	}
	u := m.UMatrix()
	if len(u) != 6 || len(u[0]) != 5 {
		t.Fatalf("U-matrix shape = %dx%d, want 6x5", len(u), len(u[0]))
	}
	for _, row := range u {
		for _, v := range row {
			if v < 0 || math.IsNaN(v) {
				t.Fatalf("invalid U-matrix value %v", v)
			}
		}
	}
}

func TestInitModes(t *testing.T) {
	samples, _ := twoBlobs(10, 4, 6, 31)
	for _, mode := range []InitMode{InitPCA, InitRandom} {
		m, err := Train(Config{Rows: 5, Cols: 5, Steps: 2000, Seed: 10, Init: mode}, samples)
		if err != nil {
			t.Fatalf("init %v: %v", mode, err)
		}
		if m.QuantizationError(samples) > 3 {
			t.Fatalf("init %v: poor final fit", mode)
		}
	}
}

func TestPCAInitFallsBackOnTinyData(t *testing.T) {
	// Two samples cannot support a PCA plane; Train must still work.
	samples := []vecmath.Vector{{1, 2, 3}, {4, 5, 6}}
	m, err := Train(Config{Rows: 3, Cols: 3, Steps: 300, Seed: 12, Init: InitPCA}, samples)
	if err != nil {
		t.Fatal(err)
	}
	if m.Dim() != 3 {
		t.Fatalf("dim = %d, want 3", m.Dim())
	}
}

func TestOneDimensionalInput(t *testing.T) {
	samples := []vecmath.Vector{{0}, {0.1}, {5}, {5.1}, {10}}
	m, err := Train(Config{Rows: 4, Cols: 4, Steps: 1500, Seed: 14}, samples)
	if err != nil {
		t.Fatal(err)
	}
	// Near-identical inputs must land on the same or adjacent cells.
	r0, c0 := m.BMU(samples[0])
	r1, c1 := m.BMU(samples[1])
	if abs(r0-r1) > 1 || abs(c0-c1) > 1 {
		t.Fatalf("near-identical 1-D inputs far apart: (%d,%d) vs (%d,%d)", r0, c0, r1, c1)
	}
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

func TestDecaySchedulesMonotone(t *testing.T) {
	for _, d := range []Decay{DecayExponential, DecayLinear, DecayInverse} {
		prev := math.Inf(1)
		for i := 0; i <= 100; i++ {
			t2 := float64(i) / 100
			v := d.value(0.5, alphaFloor, t2)
			if v > prev+1e-15 {
				t.Fatalf("decay %v not monotone at t=%v: %v > %v", d, t2, v, prev)
			}
			if v < alphaFloor-1e-15 {
				t.Fatalf("decay %v fell below floor at t=%v: %v", d, t2, v)
			}
			prev = v
		}
	}
}

func TestDecayStartsAtInitialValue(t *testing.T) {
	for _, d := range []Decay{DecayExponential, DecayLinear, DecayInverse} {
		if v := d.value(0.7, alphaFloor, 0); math.Abs(v-0.7) > 1e-12 {
			t.Fatalf("decay %v at t=0 is %v, want 0.7", d, v)
		}
	}
}

func TestDecayBelowFloorClamps(t *testing.T) {
	if v := DecayLinear.value(0.005, alphaFloor, 0.5); v != alphaFloor {
		t.Fatalf("v0 below floor should clamp to floor, got %v", v)
	}
}

func TestDecayString(t *testing.T) {
	if DecayExponential.String() != "exponential" || DecayLinear.String() != "linear" ||
		DecayInverse.String() != "inverse" || Decay(9).String() != "unknown" {
		t.Fatal("Decay.String names wrong")
	}
}

func TestLocationVectors(t *testing.T) {
	samples, _ := twoBlobs(5, 3, 5, 37)
	m, err := Train(Config{Rows: 3, Cols: 4, Steps: 100, Seed: 15}, samples)
	if err != nil {
		t.Fatal(err)
	}
	loc := m.Location(2, 3)
	if loc[0] != 2 || loc[1] != 3 {
		t.Fatalf("Location(2,3) = %v", loc)
	}
}
