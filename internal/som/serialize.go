package som

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
)

// mapJSON is the serialized form of a trained map.
type mapJSON struct {
	Rows    int         `json:"rows"`
	Cols    int         `json:"cols"`
	Dim     int         `json:"dim"`
	Weights [][]float64 `json:"weights"`
}

// Save writes the trained map as JSON. A reference clustering run can
// train once, publish the map, and let every vendor place new
// workloads on the published geometry — the paper's "a reference
// cluster distribution on a reference machine should be determined
// first" requirement made operational.
func (m *Map) Save(w io.Writer) error {
	out := mapJSON{Rows: m.rows, Cols: m.cols, Dim: m.dim, Weights: make([][]float64, len(m.weights))}
	for i, wt := range m.weights {
		out.Weights[i] = wt
	}
	enc := json.NewEncoder(w)
	return enc.Encode(out)
}

// Load reads a map saved with Save.
func Load(r io.Reader) (*Map, error) {
	var in mapJSON
	dec := json.NewDecoder(r)
	if err := dec.Decode(&in); err != nil {
		return nil, fmt.Errorf("som: decoding map: %w", err)
	}
	if in.Rows <= 0 || in.Cols <= 0 || in.Dim <= 0 {
		return nil, errors.New("som: invalid saved map shape")
	}
	if len(in.Weights) != in.Rows*in.Cols {
		return nil, fmt.Errorf("som: saved map has %d weights for a %dx%d grid",
			len(in.Weights), in.Rows, in.Cols)
	}
	m := newMap(in.Rows, in.Cols, in.Dim)
	for i, wt := range in.Weights {
		if len(wt) != in.Dim {
			return nil, fmt.Errorf("som: weight %d has dim %d, want %d", i, len(wt), in.Dim)
		}
		copy(m.weights[i], wt)
	}
	return m, nil
}

// Equal reports whether two maps have identical shape and weights —
// a testing and cache-validation helper.
func (m *Map) Equal(other *Map) bool {
	if other == nil || m.rows != other.rows || m.cols != other.cols || m.dim != other.dim {
		return false
	}
	for i := range m.weights {
		for j := range m.weights[i] {
			if m.weights[i][j] != other.weights[i][j] {
				return false
			}
		}
	}
	return true
}

// ComponentPlane returns the values of one input feature across the
// grid (unit (r,c) → weight[feature]) — the standard SOM diagnostic
// for seeing which feature drives which map region.
func (m *Map) ComponentPlane(feature int) ([][]float64, error) {
	if feature < 0 || feature >= m.dim {
		return nil, fmt.Errorf("som: feature %d out of range [0,%d)", feature, m.dim)
	}
	out := make([][]float64, m.rows)
	for r := range out {
		out[r] = make([]float64, m.cols)
		for c := range out[r] {
			out[r][c] = m.Weight(r, c)[feature]
		}
	}
	return out, nil
}
