package som

import (
	"bytes"
	"strings"
	"testing"

	"hmeans/internal/vecmath"
)

// validMapJSON serializes a genuinely trained map so the corpus
// mutates outward from a realistic artifact.
func validMapJSON(tb testing.TB) string {
	tb.Helper()
	samples := []vecmath.Vector{{0, 0, 1}, {1, 0, 0}, {0, 1, 0}, {1, 1, 1}}
	m, err := Train(Config{Rows: 3, Cols: 3, Seed: 7, BatchEpochs: 5}, samples)
	if err != nil {
		tb.Fatal(err)
	}
	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		tb.Fatal(err)
	}
	return buf.String()
}

// FuzzLoadMap asserts the SOM loader never panics on corrupted input
// and that every accepted map is internally consistent: usable for
// placement and stable under a save/load round trip.
func FuzzLoadMap(f *testing.F) {
	valid := validMapJSON(f)
	f.Add(valid)
	f.Add(valid[:len(valid)*2/3])                            // truncation
	f.Add(strings.Replace(valid, `"rows":3`, `"rows":9`, 1)) // shape mismatch
	f.Add(strings.Replace(valid, `"dim":3`, `"dim":0`, 1))   // zero dim
	f.Add(`{"rows":1,"cols":1,"dim":1,"weights":[[0.5]]}`)
	f.Add(`{"rows":-2,"cols":4,"dim":1,"weights":[]}`)
	f.Add(`{"rows":2,"cols":2,"dim":2,"weights":[[1,2],[3],[5,6],[7,8]]}`) // ragged
	f.Add(``)
	f.Add(`null`)
	f.Add(`{"rows":1000000,"cols":1000000,"dim":3,"weights":[]}`)
	f.Fuzz(func(t *testing.T, input string) {
		m, err := Load(strings.NewReader(input))
		if err != nil {
			return
		}
		if m.Rows() < 1 || m.Cols() < 1 {
			t.Fatalf("accepted map with shape %dx%d", m.Rows(), m.Cols())
		}
		// An accepted map must be usable: place a vector of the map's
		// dimension without panicking.
		probe := vecmath.NewVector(m.Dim())
		pos := m.Position(probe)
		if len(pos) != 2 {
			t.Fatalf("position has %d coordinates", len(pos))
		}
		r, c := m.BMU(probe)
		if r < 0 || r >= m.Rows() || c < 0 || c >= m.Cols() {
			t.Fatalf("BMU (%d,%d) outside %dx%d grid", r, c, m.Rows(), m.Cols())
		}
		// Round trip: save and reload must preserve the weights.
		var buf bytes.Buffer
		if err := m.Save(&buf); err != nil {
			t.Fatalf("re-save failed: %v", err)
		}
		back, err := Load(&buf)
		if err != nil {
			t.Fatalf("reload of saved map failed: %v", err)
		}
		if !m.Equal(back) {
			t.Fatal("round trip changed the map")
		}
	})
}
