package som

import (
	"context"
	"fmt"
	"math"

	"hmeans/internal/obs"
	"hmeans/internal/par"
	"hmeans/internal/rng"
	"hmeans/internal/vecmath"
)

// Train builds and trains a map on the sample set according to cfg.
// Samples must be non-empty and rectangular. The input slices are
// read but never modified or retained.
func Train(cfg Config, samples []vecmath.Vector) (*Map, error) {
	return TrainCtx(context.Background(), cfg, samples)
}

// TrainCtx is Train with cooperative cancellation: batch training
// checks the context at every epoch boundary (its natural checkpoint
// — each epoch is one full pass plus a reduction) and inside the
// sharded accumulation, sequential training every few hundred steps.
// On cancellation the partially trained map is discarded and the
// context's error returned. A context that never fires leaves the
// trained weights bit-identical to Train.
func TrainCtx(ctx context.Context, cfg Config, samples []vecmath.Vector) (*Map, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if len(samples) == 0 {
		return nil, ErrNoData
	}
	dim := len(samples[0])
	if dim == 0 {
		return nil, fmt.Errorf("som: zero-dimensional samples")
	}
	for i, s := range samples {
		if len(s) != dim {
			return nil, fmt.Errorf("som: sample %d has dim %d, want %d", i, len(s), dim)
		}
	}
	c := cfg.withDefaults()
	switch c.BMU {
	case BMUSearchAuto, BMUSearchBrute, BMUSearchPruned, BMUSearchCoarse:
	default:
		return nil, fmt.Errorf("som: unknown BMU search mode %d", int(c.BMU))
	}
	o := obs.Or(c.Obs)
	sp := o.StartSpan("som.train",
		obs.KV("algorithm", c.Algorithm.String()),
		obs.KV("rows", c.Rows), obs.KV("cols", c.Cols),
		obs.KV("samples", len(samples)), obs.KV("dim", dim))
	defer sp.End()
	m := newMap(c.Rows, c.Cols, dim)
	r := rng.New(c.Seed)

	switch c.Init {
	case InitRandom:
		m.initRandom(samples, r)
	default:
		if !m.initPCA(samples) {
			m.initRandom(samples, r)
		}
	}

	if c.Algorithm == Batch {
		if err := m.trainBatch(ctx, c, samples, o, sp); err != nil {
			return nil, err
		}
	} else {
		if err := m.trainSequential(ctx, c, samples, r, o, sp); err != nil {
			return nil, err
		}
	}
	// Apply the configured query mode to the now-frozen weights (the
	// coarse mode takes effect only here — training above was exact).
	if err := m.SetBMUSearch(c.BMU); err != nil {
		return nil, err
	}
	return m, nil
}

// kernelCutoff is the smallest neighbourhood-kernel value that
// participates in a batch update; see trainBatch for why far tails
// must not capture unvisited units.
const kernelCutoff = 0.05

// batchShardSize is the fixed accumulation-shard width of batch
// training. Shard boundaries depend only on the sample count — never
// on Config.Parallelism — so the shard-order reduction makes the
// trained map bit-identical for every worker count. Sample sets no
// larger than one shard accumulate in exactly the historical serial
// order.
const batchShardSize = 32

// batchEpochs returns the epoch count for batch training: an explicit
// BatchEpochs wins, otherwise Steps is reinterpreted as sample
// presentations and clamped to a practical epoch range.
func batchEpochs(c Config, nSamples int) int {
	if c.BatchEpochs > 0 {
		return c.BatchEpochs
	}
	epochs := c.Steps / maxInt(1, nSamples)
	if epochs < 10 {
		epochs = 10
	}
	if epochs > 200 {
		epochs = 200
	}
	return epochs
}

// batchRun is the reusable working set of one batch-training run: the
// shard-private numerator/denominator accumulators, the per-reduction-
// shard scratch, and the fan-out bodies themselves. Everything is
// allocated exactly once (by newBatchRun) and reused across epochs, so
// a steady-state epoch performs zero heap allocations: the accumulator
// planes are flat []float64 arenas indexed by (shard, unit, dim), and
// the shard bodies are method values bound once — not closures rebuilt
// per epoch.
type batchRun struct {
	m       *Map
	samples []vecmath.Vector
	// shards is the sample-accumulation shard count; rshards the
	// unit-reduction shard count. Both use batchShardSize, so both
	// partitions depend only on problem size, never on worker count.
	shards, rshards int
	units, dim      int
	// num[(s*units+u)*dim : …+dim] is shard s's numerator for unit u;
	// den[s*units+u] its denominator.
	num, den []float64
	// scratch[r*dim : (r+1)*dim] is reduction shard r's private numSum.
	scratch []float64
	// qe[s] is shard s's quantization-error sum; nil when no observer
	// is active.
	qe []float64
	// inv2s2 carries the per-epoch kernel parameter 1/(2σ²) into the
	// shard bodies without a per-epoch closure.
	inv2s2 float64
	// accumulate/reduce are method values bound once so the per-epoch
	// fan-outs pass a reused func value instead of allocating one.
	accumulate func(shard, start, end int)
	reduce     func(shard, start, end int)
}

func newBatchRun(m *Map, samples []vecmath.Vector, withQE bool) *batchRun {
	units, dim := len(m.weights), m.dim
	b := &batchRun{
		m:       m,
		samples: samples,
		shards:  (len(samples) + batchShardSize - 1) / batchShardSize,
		rshards: (units + batchShardSize - 1) / batchShardSize,
		units:   units,
		dim:     dim,
	}
	b.num = make([]float64, b.shards*units*dim)
	b.den = make([]float64, b.shards*units)
	b.scratch = make([]float64, b.rshards*dim)
	if withQE {
		b.qe = make([]float64, b.shards)
	}
	b.accumulate = b.accumulateShard
	b.reduce = b.reduceShard
	return b
}

// accumulateShard zeroes shard `shard`'s accumulators, then folds
// samples[start:end] into them: each sample adds h·x to the numerator
// and h to the denominator of every unit inside its BMU's effective
// neighbourhood. The arithmetic (w[j] += h·x[j], in index order) is
// exactly the AXPY of the historical per-unit-vector layout.
func (b *batchRun) accumulateShard(shard, start, end int) {
	m, dim := b.m, b.dim
	snum := b.num[shard*b.units*dim : (shard+1)*b.units*dim]
	sden := b.den[shard*b.units : (shard+1)*b.units]
	for i := range snum {
		snum[i] = 0
	}
	for i := range sden {
		sden[i] = 0
	}
	inv2s2 := b.inv2s2
	var qeSum float64
	for _, x := range b.samples[start:end] {
		bu, d2 := m.bmu(x)
		if b.qe != nil {
			qeSum += math.Sqrt(d2)
		}
		br, bc := bu/m.cols, bu%m.cols
		for gr := 0; gr < m.rows; gr++ {
			for gc := 0; gc < m.cols; gc++ {
				dr, dc := float64(gr-br), float64(gc-bc)
				h := math.Exp(-(dr*dr + dc*dc) * inv2s2)
				if h < kernelCutoff {
					continue
				}
				u := gr*m.cols + gc
				w := snum[u*dim : (u+1)*dim]
				for j, xj := range x {
					w[j] += h * xj
				}
				sden[u] += h
			}
		}
	}
	if b.qe != nil {
		b.qe[shard] = qeSum
	}
}

// reduceShard sums every accumulation shard's slot for units
// [start, end) in ascending shard order — so the float sums do not
// depend on which worker filled which shard — and applies the weight
// update. numSum[j] += v is bit-identical to the historical
// AXPYInPlace(1, ·) because 1·v == v exactly.
func (b *batchRun) reduceShard(shard, start, end int) {
	dim := b.dim
	numSum := b.scratch[shard*dim : (shard+1)*dim]
	for u := start; u < end; u++ {
		denSum := 0.0
		for j := range numSum {
			numSum[j] = 0
		}
		for s := 0; s < b.shards; s++ {
			sv := b.num[(s*b.units+u)*dim : (s*b.units+u+1)*dim]
			for j, v := range sv {
				numSum[j] += v
			}
			denSum += b.den[s*b.units+u]
		}
		if denSum < kernelCutoff {
			// The unit is outside every sample's effective
			// neighbourhood this epoch. Keep its weight: far
			// units must retain the ordered (PCA-interpolated)
			// surface rather than be captured by whichever
			// sample's kernel tail happens to dominate — that
			// capture is what creates grid-wide weight plateaus
			// and scatters near-identical samples' BMUs.
			continue
		}
		w := b.m.weights[u]
		for j := range w {
			w[j] = numSum[j] / denSum
		}
	}
}

// epoch runs one batch epoch at neighbourhood radius sigma:
// shard-parallel accumulation, then the shard-order reduction and
// weight update. The reduction is not cancellable mid-flight — a
// partial weight update would leave the map inconsistent — so the
// caller's next epoch checkpoint handles a fired context.
func (b *batchRun) epoch(ctx context.Context, workers int, sigma float64) error {
	b.inv2s2 = 1 / (2 * sigma * sigma)
	if _, err := par.FixedShardsCtx(ctx, workers, len(b.samples), batchShardSize, b.accumulate); err != nil {
		return err
	}
	_, _ = par.FixedShardsCtx(context.Background(), workers, b.units, batchShardSize, b.reduce)
	return nil
}

// epochQE returns the epoch's mean sample→BMU distance from the
// per-shard sums gathered during accumulation.
func (b *batchRun) epochQE() float64 {
	var total float64
	for _, v := range b.qe {
		total += v
	}
	return total / float64(len(b.samples))
}

// trainBatch runs the batch SOM algorithm: each epoch assigns every
// sample to its BMU, then recomputes every unit's weight as the
// kernel-weighted mean of all samples,
//
//	w_i = Σ_j h(i, c_j) x_j / Σ_j h(i, c_j),
//
// with the neighbourhood radius annealed across epochs. Batch
// training is deterministic (no sample-order randomness), converges
// in tens of epochs, and — because each unit's weight is a smooth
// kernel average — does not magnify tight sample blobs across the
// grid the way a fully converged sequential run does. That makes it
// the right default for the paper's use case: tiny sample counts
// (one vector per workload) where BMU geometry is the product the
// clustering stage consumes.
//
// The per-epoch accumulation is partitioned into fixed-size sample
// shards (batchShardSize) spread across Config.Parallelism workers.
// Each shard owns private numerator/denominator accumulators; one
// reduction per epoch sums them in shard-index order, so the weight
// update — and therefore the converged map — is bit-identical for
// any worker count. The BMU searches inside a shard only read the
// previous epoch's weights, which are frozen until the reduction.
// All working memory lives in a batchRun allocated once up front;
// see that type for the allocation discipline.
//
// When an observer is active each epoch additionally accumulates the
// quantization error (mean sample→BMU distance) per shard — the BMU
// distances are already computed, so the extra cost is one sqrt and
// add per sample — and emits a som.epoch event with the annealed
// radius and the epoch's QE.
func (m *Map) trainBatch(ctx context.Context, c Config, samples []vecmath.Vector, o *obs.Observer, sp *obs.Span) error {
	floor := c.SigmaFinal
	if floor <= 0 {
		floor = sigmaFloor
	}
	epochs := batchEpochs(c, len(samples))
	workers := par.Resolve(c.Parallelism)
	b := newBatchRun(m, samples, o.Active())
	// Training must stay exact, so the coarse query mode trains under
	// the auto policy; the pruned index is valid for exactly one epoch
	// (the reduction rewrites the weights) and is rebuilt at each
	// epoch's start, while the BMU scans inside the epoch read only
	// the frozen previous-epoch weights.
	trainingMode := c.BMU
	if trainingMode == BMUSearchCoarse {
		trainingMode = BMUSearchAuto
	}
	usePruned := m.resolveBMUSearch(trainingMode) == BMUSearchPruned
	var qeGauge, sigmaGauge *obs.Gauge
	if o.Active() {
		qeGauge = o.Metrics().Gauge("som.qe")
		sigmaGauge = o.Metrics().Gauge("som.sigma")
		o.Metrics().Counter("som.epochs").Add(int64(epochs))
	}
	for e := 0; e < epochs; e++ {
		// The per-epoch checkpoint: a fired context abandons training
		// between epochs, so the caller never sees a half-reduced map.
		if err := ctx.Err(); err != nil {
			return fmt.Errorf("som: training cancelled at epoch %d of %d: %w", e, epochs, err)
		}
		t := float64(e) / float64(epochs)
		sigma := c.RadiusDecay.value(c.Sigma0, floor, t)
		if usePruned {
			m.index = m.buildBMUIndex()
		}
		if err := b.epoch(ctx, workers, sigma); err != nil {
			return fmt.Errorf("som: epoch %d accumulation: %w", e, err)
		}
		if b.qe != nil {
			epochQE := b.epochQE()
			qeGauge.Set(epochQE)
			sigmaGauge.Set(sigma)
			sp.Event("som.epoch", obs.KV("epoch", e), obs.KV("qe", epochQE), obs.KV("sigma", sigma))
		}
	}
	return nil
}

// trainSequential runs the classic on-line SOM loop: at every step a
// random sample is presented, its BMU located, and the BMU
// neighbourhood pulled toward the sample with the Gaussian kernel
// h_ci(n) = α(n)·exp(−‖r_c − r_i‖²/2σ²(n)).
// When an observer is active a som.step event is emitted at 32
// evenly spaced checkpoints recording the annealed learning rate and
// radius — sequential training has no epochs, so checkpoints stand
// in for them.
// cancelCheckSteps is the sequential-training cancellation stride:
// the context is polled every this many steps, bounding the latency
// of a cancellation to a few hundred cheap weight updates.
const cancelCheckSteps = 256

func (m *Map) trainSequential(ctx context.Context, c Config, samples []vecmath.Vector, r *rng.Source, o *obs.Observer, sp *obs.Span) error {
	interval := 0
	if o.Active() {
		interval = c.Steps / 32
		if interval < 1 {
			interval = 1
		}
		o.Metrics().Counter("som.steps").Add(int64(c.Steps))
	}
	diff := vecmath.NewVector(m.dim) // scratch: x − w_i
	for n := 0; n < c.Steps; n++ {
		if n%cancelCheckSteps == 0 {
			if err := ctx.Err(); err != nil {
				return fmt.Errorf("som: training cancelled at step %d of %d: %w", n, c.Steps, err)
			}
		}
		t := float64(n) / float64(c.Steps)
		alpha := c.LearningDecay.value(c.Alpha0, alphaFloor, t)
		floor := c.SigmaFinal
		if floor <= 0 {
			floor = sigmaFloor
		}
		sigma := c.RadiusDecay.value(c.Sigma0, floor, t)
		if interval > 0 && n%interval == 0 {
			o.Metrics().Gauge("som.alpha").Set(alpha)
			o.Metrics().Gauge("som.sigma").Set(sigma)
			sp.Event("som.step", obs.KV("step", n), obs.KV("alpha", alpha), obs.KV("sigma", sigma))
		}
		x := samples[r.Intn(len(samples))]
		br, bc := m.BMU(x)
		m.updateNeighbourhood(x, br, bc, alpha, sigma, diff)
	}
	return nil
}

// updateNeighbourhood applies the weight update around BMU (br, bc).
// Units farther than cutoff·σ contribute a negligible kernel value
// and are skipped; this bounds the work per step without changing
// the result materially.
func (m *Map) updateNeighbourhood(x vecmath.Vector, br, bc int, alpha, sigma float64, diff vecmath.Vector) {
	const cutoff = 3.0
	reach := int(math.Ceil(cutoff * sigma))
	r0, r1 := maxInt(0, br-reach), minInt(m.rows-1, br+reach)
	c0, c1 := maxInt(0, bc-reach), minInt(m.cols-1, bc+reach)
	inv2s2 := 1 / (2 * sigma * sigma)
	for gr := r0; gr <= r1; gr++ {
		for gc := c0; gc <= c1; gc++ {
			dr, dc := float64(gr-br), float64(gc-bc)
			h := alpha * math.Exp(-(dr*dr+dc*dc)*inv2s2)
			if h < 1e-9 {
				continue
			}
			w := m.weights[gr*m.cols+gc]
			for j := range w {
				diff[j] = x[j] - w[j]
			}
			w.AXPYInPlace(h, diff)
		}
	}
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// Placements maps every sample to its BMU grid position. The result
// is the 2-D point set handed to hierarchical clustering.
func (m *Map) Placements(samples []vecmath.Vector) []vecmath.Vector {
	return m.PlacementsP(samples, 1)
}

// PlacementsP is Placements across a worker pool. Every sample's BMU
// is independent of the others, so the result is identical for any
// worker count.
func (m *Map) PlacementsP(samples []vecmath.Vector, workers int) []vecmath.Vector {
	out := make([]vecmath.Vector, len(samples))
	par.For(workers, len(samples), func(start, end int) {
		for i := start; i < end; i++ {
			out[i] = m.Position(samples[i])
		}
	})
	return out
}

// SoftPosition returns an interpolated grid position for x: the
// inverse-distance-weighted (power 4) centroid of all unit locations,
//
//	pos(x) = Σ_u (1/d(x,w_u)⁴) r_u / Σ_u (1/d(x,w_u)⁴).
//
// Unlike the hard BMU cell, the soft position is stable on weight
// plateaus: when a tight blob of samples owns a flat region of the
// map, every member's soft position collapses to (nearly) the same
// plateau centroid instead of scattering across it on microscopic
// weight noise. An exact weight match returns that unit's location.
// The weighting is self-scaling — no bandwidth parameter — because
// only the *ratios* of distances matter.
func (m *Map) SoftPosition(x vecmath.Vector) vecmath.Vector {
	if len(x) != m.dim {
		panic(fmt.Sprintf("som: input dim %d != map dim %d", len(x), m.dim))
	}
	var wsum float64
	pos := vecmath.NewVector(2)
	for u, w := range m.weights {
		d2 := vecmath.SquaredEuclidean(x, w)
		if d2 == 0 {
			return m.locations[u].Clone()
		}
		wt := 1 / (d2 * d2)
		wsum += wt
		pos.AXPYInPlace(wt, m.locations[u])
	}
	pos.ScaleInPlace(1 / wsum)
	return pos
}

// SoftPlacements maps every sample to its soft (interpolated) grid
// position; see SoftPosition.
func (m *Map) SoftPlacements(samples []vecmath.Vector) []vecmath.Vector {
	return m.SoftPlacementsP(samples, 1)
}

// SoftPlacementsP is SoftPlacements across a worker pool; like
// PlacementsP the result is identical for any worker count.
func (m *Map) SoftPlacementsP(samples []vecmath.Vector, workers int) []vecmath.Vector {
	out := make([]vecmath.Vector, len(samples))
	par.For(workers, len(samples), func(start, end int) {
		for i := start; i < end; i++ {
			out[i] = m.SoftPosition(samples[i])
		}
	})
	return out
}

// HitMap returns a Rows×Cols matrix counting how many samples map to
// each unit; cells with count ≥ 2 are the "darker cells" of the
// paper's figures (particularly similar workloads).
func (m *Map) HitMap(samples []vecmath.Vector) [][]int {
	hits := make([][]int, m.rows)
	for r := range hits {
		hits[r] = make([]int, m.cols)
	}
	for _, s := range samples {
		r, c := m.BMU(s)
		hits[r][c]++
	}
	return hits
}
