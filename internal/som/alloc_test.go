package som

import (
	"context"
	"testing"
)

// TestBMUAllocationFree pins the BMU scan — the innermost loop of both
// training algorithms — at zero heap allocations.
func TestBMUAllocationFree(t *testing.T) {
	samples := benchSamples(14, 160)
	m, err := Train(Config{Rows: 10, Cols: 10, Steps: 500, Seed: 1}, samples)
	if err != nil {
		t.Fatal(err)
	}
	x := samples[3]
	if avg := testing.AllocsPerRun(200, func() { m.bmu(x) }); avg != 0 {
		t.Errorf("bmu scan: %v allocs/op, want 0", avg)
	}
	if avg := testing.AllocsPerRun(200, func() { m.BMU(x) }); avg != 0 {
		t.Errorf("BMU: %v allocs/op, want 0", avg)
	}
}

// TestBatchEpochAllocationFree pins one steady-state batch-training
// epoch at zero heap allocations: the batchRun arena is allocated once
// per Train call and every epoch reuses it.
func TestBatchEpochAllocationFree(t *testing.T) {
	samples := benchSamples(64, 24)
	m, err := Train(Config{Rows: 6, Cols: 6, Algorithm: Batch, BatchEpochs: 2, Seed: 1}, samples)
	if err != nil {
		t.Fatal(err)
	}
	b := newBatchRun(m, samples, false)
	ctx := context.Background()
	// Warm once so lazy runtime state (e.g. the first map growth of
	// pprof labels) cannot masquerade as a steady-state allocation.
	if err := b.epoch(ctx, 1, 1.5); err != nil {
		t.Fatal(err)
	}
	if avg := testing.AllocsPerRun(100, func() {
		if err := b.epoch(ctx, 1, 1.5); err != nil {
			t.Fatal(err)
		}
	}); avg != 0 {
		t.Errorf("batch epoch (serial): %v allocs/op, want 0", avg)
	}
}

// TestBatchRunMatchesTrain proves the arena-backed epoch produces the
// same map Train does: replaying Train's epoch schedule through a
// fresh batchRun over an identically initialized map must reproduce
// the trained weights bit for bit.
func TestBatchRunMatchesTrain(t *testing.T) {
	samples := benchSamples(40, 12)
	cfg := Config{Rows: 5, Cols: 5, Algorithm: Batch, BatchEpochs: 15, Seed: 7}
	want, err := Train(cfg, samples)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Train(cfg, samples)
	if err != nil {
		t.Fatal(err)
	}
	if !want.Equal(got) {
		t.Fatal("batch training is not deterministic")
	}
	for _, workers := range []int{2, 8} {
		cfgW := cfg
		cfgW.Parallelism = workers
		gotW, err := Train(cfgW, samples)
		if err != nil {
			t.Fatal(err)
		}
		if !want.Equal(gotW) {
			t.Errorf("batch training with %d workers differs from serial", workers)
		}
	}
}
