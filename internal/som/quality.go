package som

import (
	"hmeans/internal/vecmath"
)

// QuantizationError returns the mean Euclidean distance between each
// sample and its BMU weight — the standard SOM fit measure. Lower is
// better; zero means every sample sits exactly on a unit.
func (m *Map) QuantizationError(samples []vecmath.Vector) float64 {
	if len(samples) == 0 {
		return 0
	}
	sum := 0.0
	for _, s := range samples {
		r, c := m.BMU(s)
		sum += vecmath.EuclideanDistance(s, m.Weight(r, c))
	}
	return sum / float64(len(samples))
}

// TopographicError returns the fraction of samples whose first and
// second BMUs are not grid-adjacent (8-neighbourhood). It measures
// how faithfully the map preserves input-space topology; 0 is a
// perfectly topology-preserving map.
func (m *Map) TopographicError(samples []vecmath.Vector) float64 {
	if len(samples) == 0 {
		return 0
	}
	bad := 0
	for _, s := range samples {
		first, second := m.twoBMUs(s)
		r1, c1 := first/m.cols, first%m.cols
		r2, c2 := second/m.cols, second%m.cols
		dr, dc := r1-r2, c1-c2
		if dr < 0 {
			dr = -dr
		}
		if dc < 0 {
			dc = -dc
		}
		if dr > 1 || dc > 1 {
			bad++
		}
	}
	return float64(bad) / float64(len(samples))
}

// UMatrix returns the unified distance matrix: for each unit, the
// mean input-space distance between its weight and the weights of its
// grid neighbours (4-neighbourhood). High values mark cluster
// boundaries on the map; the matrix is the standard SOM
// visualization companion.
func (m *Map) UMatrix() [][]float64 {
	u := make([][]float64, m.rows)
	for r := range u {
		u[r] = make([]float64, m.cols)
		for c := range u[r] {
			sum, cnt := 0.0, 0
			w := m.Weight(r, c)
			for _, d := range [4][2]int{{-1, 0}, {1, 0}, {0, -1}, {0, 1}} {
				nr, nc := r+d[0], c+d[1]
				if nr < 0 || nr >= m.rows || nc < 0 || nc >= m.cols {
					continue
				}
				sum += vecmath.EuclideanDistance(w, m.Weight(nr, nc))
				cnt++
			}
			u[r][c] = sum / float64(cnt)
		}
	}
	return u
}
