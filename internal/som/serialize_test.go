package som

import (
	"bytes"
	"strings"
	"testing"
)

func TestSaveLoadRoundTrip(t *testing.T) {
	samples, _ := twoBlobs(8, 4, 6, 21)
	m, err := Train(Config{Rows: 4, Cols: 5, Steps: 2000, Seed: 13}, samples)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !m.Equal(back) {
		t.Fatal("round-tripped map differs")
	}
	// Placements must be identical through the round trip.
	for _, s := range samples {
		r1, c1 := m.BMU(s)
		r2, c2 := back.BMU(s)
		if r1 != r2 || c1 != c2 {
			t.Fatal("BMU changed through serialization")
		}
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	cases := []string{
		"not json",
		`{"rows":0,"cols":3,"dim":2,"weights":[]}`,
		`{"rows":2,"cols":2,"dim":2,"weights":[[1,2]]}`,
		`{"rows":1,"cols":1,"dim":2,"weights":[[1]]}`,
	}
	for _, c := range cases {
		if _, err := Load(strings.NewReader(c)); err == nil {
			t.Errorf("Load accepted %q", c)
		}
	}
}

func TestEqual(t *testing.T) {
	samples, _ := twoBlobs(5, 3, 5, 27)
	a, _ := Train(Config{Rows: 3, Cols: 3, Steps: 500, Seed: 1}, samples)
	b, _ := Train(Config{Rows: 3, Cols: 3, Steps: 500, Seed: 1}, samples)
	c, _ := Train(Config{Rows: 3, Cols: 3, Steps: 500, Seed: 2}, samples)
	if !a.Equal(b) {
		t.Error("same-seed maps differ")
	}
	if a.Equal(c) {
		t.Error("different-seed maps equal")
	}
	if a.Equal(nil) {
		t.Error("nil map equal")
	}
	d, _ := Train(Config{Rows: 2, Cols: 3, Steps: 500, Seed: 1}, samples)
	if a.Equal(d) {
		t.Error("different-shape maps equal")
	}
}

func TestComponentPlane(t *testing.T) {
	samples, _ := twoBlobs(6, 3, 5, 31)
	m, err := Train(Config{Rows: 3, Cols: 4, Steps: 1000, Seed: 3}, samples)
	if err != nil {
		t.Fatal(err)
	}
	plane, err := m.ComponentPlane(1)
	if err != nil {
		t.Fatal(err)
	}
	if len(plane) != 3 || len(plane[0]) != 4 {
		t.Fatalf("plane shape %dx%d", len(plane), len(plane[0]))
	}
	for r := range plane {
		for c := range plane[r] {
			if plane[r][c] != m.Weight(r, c)[1] {
				t.Fatal("plane values wrong")
			}
		}
	}
	if _, err := m.ComponentPlane(-1); err == nil {
		t.Error("negative feature accepted")
	}
	if _, err := m.ComponentPlane(3); err == nil {
		t.Error("out-of-range feature accepted")
	}
}

func TestBatchTraining(t *testing.T) {
	samples, _ := twoBlobs(10, 4, 8, 33)
	cfg := Config{Rows: 5, Cols: 5, Seed: 1, Algorithm: Batch}
	m1, err := Train(cfg, samples)
	if err != nil {
		t.Fatal(err)
	}
	// Batch training is deterministic even across seeds when PCA
	// init succeeds (the seed only matters for random init and
	// sample order, neither used here).
	cfg.Seed = 999
	m2, err := Train(cfg, samples)
	if err != nil {
		t.Fatal(err)
	}
	if !m1.Equal(m2) {
		t.Error("batch training with PCA init should be seed-independent")
	}
	// And it must separate the blobs like sequential training does.
	q := m1.QuantizationError(samples)
	if q > 1 {
		t.Errorf("batch quantization error %v too high", q)
	}
}

func TestSoftPositionStability(t *testing.T) {
	samples, _ := twoBlobs(8, 4, 8, 35)
	m, err := Train(Config{Rows: 5, Cols: 5, Steps: 3000, Seed: 2}, samples)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range samples {
		p := m.SoftPosition(s)
		if len(p) != 2 {
			t.Fatal("soft position not 2-D")
		}
		if p[0] < 0 || p[0] > 4 || p[1] < 0 || p[1] > 4 {
			t.Fatalf("soft position %v outside the grid", p)
		}
		// Soft position of a sample that exactly matches a weight is
		// that unit's location.
		r, c := m.BMU(s)
		hard := m.Weight(r, c)
		exact := m.SoftPosition(hard)
		er, ec := m.BMU(hard)
		if exact[0] != float64(er) || exact[1] != float64(ec) {
			t.Fatalf("soft position of an exact weight = %v, BMU = (%d,%d)", exact, er, ec)
		}
	}
}

func TestSoftPlacementsMatchesPerSample(t *testing.T) {
	samples, _ := twoBlobs(5, 3, 5, 37)
	m, err := Train(Config{Rows: 4, Cols: 4, Steps: 800, Seed: 4}, samples)
	if err != nil {
		t.Fatal(err)
	}
	batch := m.SoftPlacements(samples)
	for i, s := range samples {
		p := m.SoftPosition(s)
		if p[0] != batch[i][0] || p[1] != batch[i][1] {
			t.Fatal("SoftPlacements inconsistent with SoftPosition")
		}
	}
}

func TestSoftPositionDimMismatchPanics(t *testing.T) {
	samples, _ := twoBlobs(5, 3, 5, 39)
	m, _ := Train(Config{Rows: 3, Cols: 3, Steps: 300, Seed: 5}, samples)
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on dim mismatch")
		}
	}()
	m.SoftPosition([]float64{1})
}

func TestGridFor(t *testing.T) {
	cases := []struct{ n, wantUnitsMin, wantUnitsMax int }{
		{1, 4, 9},
		{13, 18, 24},
		{100, 50, 60},
	}
	for _, c := range cases {
		r, cl := GridFor(c.n)
		units := r * cl
		if units < c.wantUnitsMin || units > c.wantUnitsMax {
			t.Errorf("GridFor(%d) = %dx%d (%d units), want %d..%d",
				c.n, r, cl, units, c.wantUnitsMin, c.wantUnitsMax)
		}
		if r < 2 || cl < 2 {
			t.Errorf("GridFor(%d) = %dx%d: degenerate axis", c.n, r, cl)
		}
	}
	if r, c := GridFor(0); r < 2 || c < 2 {
		t.Error("GridFor(0) degenerate")
	}
}
