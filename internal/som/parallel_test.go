package som

import (
	"math"
	"testing"
)

// equalMaps reports whether two maps hold bit-identical weights —
// Float64bits equality, not approximate comparison, because the
// parallel batch path promises an exact reproduction of the serial
// reduction order.
func equalMaps(t *testing.T, a, b *Map) bool {
	t.Helper()
	if a.Rows() != b.Rows() || a.Cols() != b.Cols() || a.Dim() != b.Dim() {
		return false
	}
	for r := 0; r < a.Rows(); r++ {
		for c := 0; c < a.Cols(); c++ {
			wa, wb := a.Weight(r, c), b.Weight(r, c)
			for j := range wa {
				if math.Float64bits(wa[j]) != math.Float64bits(wb[j]) {
					return false
				}
			}
		}
	}
	return true
}

// TestBatchTrainingParallelDeterminism is the determinism property
// the parallel layer is built around: for any fixed seed the batch
// algorithm converges to a bit-identical map whether it runs on 1, 2
// or 8 workers. The sample count spans several accumulation shards so
// the cross-shard reduction path is actually exercised.
func TestBatchTrainingParallelDeterminism(t *testing.T) {
	for seed := uint64(1); seed <= 5; seed++ {
		samples, _ := twoBlobs(45, 12, 6, seed) // 90 samples: 3 shards
		cfg := Config{
			Rows: 7, Cols: 6, Algorithm: Batch, BatchEpochs: 30,
			Seed: seed, Parallelism: 1,
		}
		base, err := Train(cfg, samples)
		if err != nil {
			t.Fatal(err)
		}
		basePlaces := base.Placements(samples)
		for _, workers := range []int{1, 2, 8} {
			cfg.Parallelism = workers
			m, err := Train(cfg, samples)
			if err != nil {
				t.Fatal(err)
			}
			if !equalMaps(t, base, m) {
				t.Fatalf("seed %d: %d-worker batch map differs from serial", seed, workers)
			}
			places := m.PlacementsP(samples, workers)
			for i := range places {
				if places[i][0] != basePlaces[i][0] || places[i][1] != basePlaces[i][1] {
					t.Fatalf("seed %d workers %d: placement %d = %v, serial %v",
						seed, workers, i, places[i], basePlaces[i])
				}
			}
		}
	}
}

// TestBatchEpochsOverride checks BatchEpochs wins over the
// Steps-derived epoch count: two configs that differ only in Steps
// but share BatchEpochs must converge identically.
func TestBatchEpochsOverride(t *testing.T) {
	samples, _ := twoBlobs(10, 6, 5, 3)
	a, err := Train(Config{Rows: 5, Cols: 5, Algorithm: Batch, BatchEpochs: 25, Steps: 100, Seed: 9}, samples)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Train(Config{Rows: 5, Cols: 5, Algorithm: Batch, BatchEpochs: 25, Steps: 90000, Seed: 9}, samples)
	if err != nil {
		t.Fatal(err)
	}
	if !equalMaps(t, a, b) {
		t.Fatal("BatchEpochs did not override Steps-derived epoch count")
	}
}

// TestSoftPlacementsParallelMatchSerial pins the bulk placement
// helpers to their serial outputs for every worker count.
func TestSoftPlacementsParallelMatchSerial(t *testing.T) {
	samples, _ := twoBlobs(20, 8, 6, 7)
	m, err := Train(Config{Rows: 6, Cols: 6, Algorithm: Batch, BatchEpochs: 20, Seed: 7}, samples)
	if err != nil {
		t.Fatal(err)
	}
	serial := m.SoftPlacements(samples)
	for _, workers := range []int{2, 8} {
		got := m.SoftPlacementsP(samples, workers)
		for i := range got {
			for j := range got[i] {
				if math.Float64bits(got[i][j]) != math.Float64bits(serial[i][j]) {
					t.Fatalf("workers %d: soft placement %d = %v, serial %v", workers, i, got[i], serial[i])
				}
			}
		}
	}
}

// TestParallelBatchMatchesSingleShardSerial guards the backwards
// compatibility claim in batchShardSize's doc: a sample set that fits
// one shard must accumulate exactly like the historical serial code,
// independent of the configured parallelism.
func TestParallelBatchMatchesSingleShardSerial(t *testing.T) {
	samples, _ := twoBlobs(12, 10, 6, 11) // 24 samples: fits one shard
	if len(samples) > batchShardSize {
		t.Fatalf("test wants a single shard, got %d samples > %d", len(samples), batchShardSize)
	}
	base, err := Train(Config{Rows: 5, Cols: 5, Algorithm: Batch, Seed: 11}, samples)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 8} {
		m, err := Train(Config{Rows: 5, Cols: 5, Algorithm: Batch, Seed: 11, Parallelism: workers}, samples)
		if err != nil {
			t.Fatal(err)
		}
		if !equalMaps(t, base, m) {
			t.Fatalf("single-shard batch with %d workers diverged from serial", workers)
		}
	}
}

// TestSequentialIgnoresParallelism: the on-line algorithm is
// order-dependent by definition; Parallelism must not change its
// result (it is documented as ignored).
func TestSequentialIgnoresParallelism(t *testing.T) {
	samples, _ := twoBlobs(10, 6, 5, 2)
	a, err := Train(Config{Rows: 5, Cols: 4, Steps: 3000, Seed: 4}, samples)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Train(Config{Rows: 5, Cols: 4, Steps: 3000, Seed: 4, Parallelism: 8}, samples)
	if err != nil {
		t.Fatal(err)
	}
	if !equalMaps(t, a, b) {
		t.Fatal("sequential training changed under Parallelism")
	}
}
