package som

import (
	"testing"

	"hmeans/internal/vecmath"
)

func benchSamples(n, dim int) []vecmath.Vector {
	samples, _ := twoBlobs(n/2, dim, 6, 99)
	return samples
}

func BenchmarkTrainSequentialSuiteScale(b *testing.B) {
	// 13 workloads × ~160 standardized counters, the paper's scale.
	samples := benchSamples(14, 160)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Train(Config{Rows: 5, Cols: 4, Seed: 1}, samples); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTrainBatchSuiteScale(b *testing.B) {
	samples := benchSamples(14, 160)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Train(Config{Rows: 5, Cols: 4, Seed: 1, Algorithm: Batch}, samples); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBMU(b *testing.B) {
	samples := benchSamples(14, 160)
	m, err := Train(Config{Rows: 10, Cols: 10, Steps: 2000, Seed: 1}, samples)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.BMU(samples[i%len(samples)])
	}
}

func BenchmarkQuantizationError(b *testing.B) {
	samples := benchSamples(14, 160)
	m, err := Train(Config{Rows: 6, Cols: 6, Steps: 2000, Seed: 1}, samples)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.QuantizationError(samples)
	}
}

func BenchmarkUMatrix(b *testing.B) {
	samples := benchSamples(14, 160)
	m, err := Train(Config{Rows: 10, Cols: 10, Steps: 2000, Seed: 1}, samples)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.UMatrix()
	}
}
