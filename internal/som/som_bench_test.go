package som

import (
	"fmt"
	"testing"

	"hmeans/internal/par"
	"hmeans/internal/vecmath"
)

func benchSamples(n, dim int) []vecmath.Vector {
	samples, _ := twoBlobs(n/2, dim, 6, 99)
	return samples
}

// benchSamplesExact returns exactly n samples (twoBlobs always
// returns an even count).
func benchSamplesExact(n, dim int) []vecmath.Vector {
	samples, _ := twoBlobs((n+1)/2, dim, 6, 99)
	return samples[:n]
}

func BenchmarkTrainSequentialSuiteScale(b *testing.B) {
	b.ReportAllocs()
	// 13 workloads × ~160 standardized counters, the paper's scale.
	samples := benchSamples(14, 160)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Train(Config{Rows: 5, Cols: 4, Seed: 1}, samples); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTrainBatchSuiteScale(b *testing.B) {
	b.ReportAllocs()
	samples := benchSamples(14, 160)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Train(Config{Rows: 5, Cols: 4, Seed: 1, Algorithm: Batch}, samples); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTrainBatchSerialVsParallel compares the deterministic
// batch trainer at 1 worker against the full machine, from the
// paper's 13-workload suite up to the big-suite regime the parallel
// layer targets. Both arms produce bit-identical maps.
func BenchmarkTrainBatchSerialVsParallel(b *testing.B) {
	b.ReportAllocs()
	for _, n := range []int{13, 200, 1000} {
		samples := benchSamplesExact(n, 16)
		rows, cols := GridFor(n)
		for _, arm := range []struct {
			name    string
			workers int
		}{{"serial", 1}, {"parallel", par.Auto()}} {
			b.Run(fmt.Sprintf("n=%d/%s", n, arm.name), func(b *testing.B) {
				b.ReportAllocs()
				cfg := Config{
					Rows: rows, Cols: cols, Algorithm: Batch,
					BatchEpochs: 20, Seed: 1, Parallelism: arm.workers,
				}
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if _, err := Train(cfg, samples); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

func BenchmarkBMU(b *testing.B) {
	b.ReportAllocs()
	samples := benchSamples(14, 160)
	m, err := Train(Config{Rows: 10, Cols: 10, Steps: 2000, Seed: 1}, samples)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.BMU(samples[i%len(samples)])
	}
}

func BenchmarkQuantizationError(b *testing.B) {
	b.ReportAllocs()
	samples := benchSamples(14, 160)
	m, err := Train(Config{Rows: 6, Cols: 6, Steps: 2000, Seed: 1}, samples)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.QuantizationError(samples)
	}
}

func BenchmarkUMatrix(b *testing.B) {
	b.ReportAllocs()
	samples := benchSamples(14, 160)
	m, err := Train(Config{Rows: 10, Cols: 10, Steps: 2000, Seed: 1}, samples)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.UMatrix()
	}
}
