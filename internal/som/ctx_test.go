package som

import (
	"context"
	"errors"
	"testing"

	"hmeans/internal/vecmath"
)

func ctxSamples() []vecmath.Vector {
	out := make([]vecmath.Vector, 20)
	for i := range out {
		out[i] = vecmath.Vector{float64(i % 4), float64(i % 5), float64(i)}
	}
	return out
}

// TestTrainCtxBitIdentical proves the ctx-aware entry point trains
// exactly the same map as Train when the context never fires, for
// both algorithms and several worker counts.
func TestTrainCtxBitIdentical(t *testing.T) {
	samples := ctxSamples()
	for _, alg := range []Algorithm{Batch, Sequential} {
		for _, workers := range []int{1, 4} {
			cfg := Config{Rows: 4, Cols: 5, Seed: 2007, Algorithm: alg, Parallelism: workers}
			plain, err := Train(cfg, samples)
			if err != nil {
				t.Fatal(err)
			}
			withCtx, err := TrainCtx(context.Background(), cfg, samples)
			if err != nil {
				t.Fatal(err)
			}
			if !plain.Equal(withCtx) {
				t.Fatalf("alg=%v workers=%d: TrainCtx(Background) diverged from Train", alg, workers)
			}
		}
	}
}

func TestTrainCtxCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, alg := range []Algorithm{Batch, Sequential} {
		_, err := TrainCtx(ctx, Config{Rows: 4, Cols: 4, Seed: 1, Algorithm: alg}, ctxSamples())
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("alg=%v: error %v, want context.Canceled", alg, err)
		}
	}
}
