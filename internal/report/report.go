// Package report assembles a complete, self-contained benchmark
// scoring report: per-workload scores with confidence intervals, the
// detected cluster structure, the hierarchical-mean sweep, a
// recommended cluster count, and the redundancy diagnosis. It is the
// "what a consortium would actually publish" layer on top of the
// scoring and clustering machinery.
package report

import (
	"errors"
	"fmt"
	"io"
	"sort"
	"strings"

	"hmeans/internal/core"
	"hmeans/internal/stat"
	"hmeans/internal/viz"
)

// Input bundles everything a report needs.
type Input struct {
	// Title heads the report.
	Title string
	// Workloads names the suite members, aligned with Scores.
	Workloads []string
	// Scores holds one score per workload (e.g. speedup over a
	// reference machine).
	Scores []float64
	// RunTimes optionally holds the per-run raw measurements behind
	// each score (RunTimes[i] are workload i's run times); when
	// present, per-workload bootstrap intervals are reported.
	RunTimes [][]float64
	// Pipeline is the completed cluster detection for the suite.
	Pipeline *core.Pipeline
	// Kind is the mean family to report (default Geometric).
	Kind core.MeanKind
	// KMin and KMax bound the sweep (defaults 2 and n).
	KMin, KMax int
	// ConfidenceLevel for the bootstrap intervals (default 0.95).
	ConfidenceLevel float64
	// Seed drives the bootstrap resampling.
	Seed uint64
}

func (in *Input) validate() error {
	if len(in.Workloads) == 0 {
		return errors.New("report: no workloads")
	}
	if len(in.Scores) != len(in.Workloads) {
		return fmt.Errorf("report: %d scores for %d workloads", len(in.Scores), len(in.Workloads))
	}
	if in.RunTimes != nil && len(in.RunTimes) != len(in.Workloads) {
		return fmt.Errorf("report: %d run-time series for %d workloads", len(in.RunTimes), len(in.Workloads))
	}
	if in.Pipeline == nil {
		return errors.New("report: nil pipeline")
	}
	if in.Pipeline.Dendrogram.Len() != len(in.Workloads) {
		return errors.New("report: pipeline does not match the workload list")
	}
	return nil
}

func (in *Input) withDefaults() Input {
	out := *in
	if out.KMin == 0 {
		out.KMin = 2
	}
	if out.KMax == 0 {
		out.KMax = len(out.Workloads)
	}
	if out.ConfidenceLevel == 0 {
		out.ConfidenceLevel = 0.95
	}
	if out.Title == "" {
		out.Title = "Benchmark suite scoring report"
	}
	return out
}

// Write renders the full report.
func Write(w io.Writer, input Input) error {
	if err := input.validate(); err != nil {
		return err
	}
	in := input.withDefaults()

	if _, err := fmt.Fprintf(w, "%s\n%s\n\n", in.Title, strings.Repeat("=", len(in.Title))); err != nil {
		return err
	}
	if err := writeScores(w, &in); err != nil {
		return err
	}
	if err := writeClusters(w, &in); err != nil {
		return err
	}
	return writeSweep(w, &in)
}

func writeScores(w io.Writer, in *Input) error {
	if _, err := fmt.Fprintln(w, "Per-workload scores"); err != nil {
		return err
	}
	t := viz.NewTable("workload", "score", "95% CI")
	for i, name := range in.Workloads {
		ci := ""
		if in.RunTimes != nil && len(in.RunTimes[i]) >= 2 {
			iv, err := stat.BootstrapCI(in.RunTimes[i], in.ConfidenceLevel, 400, in.Seed+uint64(i), stat.ArithmeticMean)
			if err == nil {
				ci = fmt.Sprintf("[%.3f, %.3f]s", iv.Lo, iv.Hi)
			}
		}
		if err := t.AddRow(name, fmt.Sprintf("%.3f", in.Scores[i]), ci); err != nil {
			return err
		}
	}
	if err := t.Render(w); err != nil {
		return err
	}
	_, err := fmt.Fprintln(w)
	return err
}

func writeClusters(w io.Writer, in *Input) error {
	rec, err := in.Pipeline.RecommendK(in.Kind, in.Scores, in.Scores, in.KMin, in.KMax)
	if err != nil {
		// Self-comparison recommendation can fail on degenerate
		// sweeps; fall back to the midpoint.
		rec.K = (in.KMin + in.KMax) / 2
	}
	if _, err := fmt.Fprintf(w, "Cluster structure (recommended cut: k=%d)\n", rec.K); err != nil {
		return err
	}
	members, err := in.Pipeline.ClusterMembers(rec.K)
	if err != nil {
		return err
	}
	for label, ms := range members {
		marker := ""
		if len(ms) > 1 {
			marker = "   <- redundancy group"
		}
		if _, err := fmt.Fprintf(w, "  cluster %d: %s%s\n", label, strings.Join(ms, ", "), marker); err != nil {
			return err
		}
	}
	// Robustness of the score to a plausible clustering mistake.
	if c, err := in.Pipeline.ClusteringAtK(rec.K); err == nil && c.K >= 2 {
		if sens, err := core.ClusteringSensitivity(in.Kind, in.Scores, c); err == nil {
			if _, err := fmt.Fprintf(w,
				"  robustness: worst single-workload reassignment shifts the score by %.3f (%.1f%%)\n",
				sens.MaxAbsShift, 100*sens.MaxAbsShift/sens.Base); err != nil {
				return err
			}
		}
	}
	if len(rec.Quality) > 0 {
		if _, err := fmt.Fprintln(w, "\n  cut diagnostics:"); err != nil {
			return err
		}
		qt := viz.NewTable("  k", "silhouette", "Davies-Bouldin", "merge gap")
		qs := rec.Quality
		sort.Slice(qs, func(a, b int) bool { return qs[a].K < qs[b].K })
		for _, q := range qs {
			if err := qt.AddRowf(fmt.Sprintf("  %d", q.K), "%.3f", q.Silhouette, q.DaviesBouldin, q.MergeGap); err != nil {
				return err
			}
		}
		if err := qt.Render(w); err != nil {
			return err
		}
	}
	_, err = fmt.Fprintln(w)
	return err
}

func writeSweep(w io.Writer, in *Input) error {
	plain, err := core.PlainMean(in.Kind, in.Scores)
	if err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "Suite scores (%s mean family)\n", in.Kind); err != nil {
		return err
	}
	t := viz.NewTable("clusters", "hierarchical", "vs plain")
	for k := in.KMin; k <= in.KMax && k <= len(in.Workloads); k++ {
		h, err := in.Pipeline.ScoreAtK(in.Kind, in.Scores, k)
		if err != nil {
			return err
		}
		if err := t.AddRow(fmt.Sprintf("%d", k),
			fmt.Sprintf("%.3f", h),
			fmt.Sprintf("%+.1f%%", 100*(h/plain-1))); err != nil {
			return err
		}
	}
	if err := t.AddRow("plain", fmt.Sprintf("%.3f", plain), ""); err != nil {
		return err
	}
	return t.Render(w)
}
