package report

import (
	"strings"
	"testing"

	"hmeans/internal/chars"
	"hmeans/internal/core"
	"hmeans/internal/rng"
	"hmeans/internal/som"
)

func testInput(t *testing.T) Input {
	t.Helper()
	names := []string{"alpha", "beta", "kernel1", "kernel2", "kernel3"}
	features := []string{"f1", "f2", "f3"}
	rows := [][]float64{
		{9, 1, 2},
		{1, 8, 3},
		{4, 4, 9},
		{4.2, 4.1, 9.1},
		{3.9, 4.0, 8.8},
	}
	tab, err := chars.NewTable(names, features, rows)
	if err != nil {
		t.Fatal(err)
	}
	// SkipSOM: with only five workloads there is no dimensionality to
	// reduce, and clustering the standardized vectors directly is
	// deterministic.
	p, err := core.DetectClusters(tab, core.PipelineConfig{SkipSOM: true, SOM: som.Config{Seed: 9}})
	if err != nil {
		t.Fatal(err)
	}
	// Per-run times behind each score.
	r := rng.New(4)
	runs := make([][]float64, len(names))
	for i := range runs {
		runs[i] = make([]float64, 10)
		for j := range runs[i] {
			runs[i][j] = 10 + 0.2*r.NormFloat64()
		}
	}
	return Input{
		Title:     "Test suite report",
		Workloads: names,
		Scores:    []float64{2.5, 1.8, 0.9, 1.0, 0.95},
		RunTimes:  runs,
		Pipeline:  p,
	}
}

func TestWriteFullReport(t *testing.T) {
	var sb strings.Builder
	if err := Write(&sb, testInput(t)); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"Test suite report",
		"Per-workload scores",
		"kernel2",
		"95% CI",
		"Cluster structure",
		"redundancy group",
		"robustness:",
		"cut diagnostics",
		"Suite scores",
		"plain",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q:\n%s", want, out)
		}
	}
	// The three kernels are near-identical; the recommended cut must
	// group them (the redundancy-group marker must appear on a line
	// with all three kernels).
	found := false
	for _, line := range strings.Split(out, "\n") {
		if strings.Contains(line, "redundancy group") &&
			strings.Contains(line, "kernel1") &&
			strings.Contains(line, "kernel2") &&
			strings.Contains(line, "kernel3") {
			found = true
		}
	}
	if !found {
		t.Errorf("kernels not grouped in report:\n%s", out)
	}
}

func TestWriteWithoutRunTimes(t *testing.T) {
	in := testInput(t)
	in.RunTimes = nil
	var sb strings.Builder
	if err := Write(&sb, in); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(sb.String(), "]s") {
		t.Error("CI column rendered without run data")
	}
}

func TestWriteValidation(t *testing.T) {
	in := testInput(t)
	bad := in
	bad.Scores = bad.Scores[:2]
	if err := Write(&strings.Builder{}, bad); err == nil {
		t.Error("score/workload mismatch accepted")
	}
	bad2 := in
	bad2.Pipeline = nil
	if err := Write(&strings.Builder{}, bad2); err == nil {
		t.Error("nil pipeline accepted")
	}
	bad3 := in
	bad3.Workloads = nil
	bad3.Scores = nil
	if err := Write(&strings.Builder{}, bad3); err == nil {
		t.Error("empty suite accepted")
	}
	bad4 := in
	bad4.RunTimes = bad4.RunTimes[:1]
	if err := Write(&strings.Builder{}, bad4); err == nil {
		t.Error("run-time shape mismatch accepted")
	}
}

func TestDefaultTitle(t *testing.T) {
	in := testInput(t)
	in.Title = ""
	var sb strings.Builder
	if err := Write(&sb, in); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "Benchmark suite scoring report") {
		t.Error("default title missing")
	}
}

func TestMeanFamilySelectable(t *testing.T) {
	in := testInput(t)
	in.Kind = core.Harmonic
	var sb strings.Builder
	if err := Write(&sb, in); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "harmonic mean family") {
		t.Error("mean family not reported")
	}
}
