package resilience

import (
	"context"
	"time"
)

// Hedged runs attempt and, if no result has arrived after delay,
// launches one hedge attempt of the same work; the first result to
// come back wins and the loser's context is cancelled. delay <= 0
// disables hedging (a plain call). attempt must be safe to run twice
// concurrently — for the scoring tier that holds by construction,
// because identical requests coalesce server-side onto one
// computation and hits are served from the content-addressed cache.
//
// Hedging trades duplicate work for tail latency: it cuts the p99 a
// straggling connection causes while the duplicate usually lands as a
// cache hit or coalesced follower. The classic reference is Dean &
// Barroso, "The Tail at Scale" (CACM 2013).
func Hedged[T any](ctx context.Context, delay time.Duration, attempt func(ctx context.Context) (T, error)) (T, error) {
	if delay <= 0 {
		return attempt(ctx)
	}
	type result struct {
		v   T
		err error
	}
	hctx, cancel := context.WithCancel(ctx)
	defer cancel()
	results := make(chan result, 2)
	run := func() {
		v, err := attempt(hctx)
		results <- result{v, err}
	}
	go run()
	timer := time.NewTimer(delay)
	defer timer.Stop()
	launched := 1
	select {
	case r := <-results:
		return r.v, r.err
	case <-timer.C:
		go run()
		launched = 2
	case <-ctx.Done():
		var zero T
		return zero, ctx.Err()
	}
	// Two attempts racing: the first success wins; if the first
	// arrival failed, wait for the other before giving up.
	var firstErr error
	for i := 0; i < launched; i++ {
		select {
		case r := <-results:
			if r.err == nil {
				return r.v, nil
			}
			if firstErr == nil {
				firstErr = r.err
			}
		case <-ctx.Done():
			var zero T
			return zero, ctx.Err()
		}
	}
	var zero T
	return zero, firstErr
}
