package resilience

import (
	"sync"
	"time"
)

// Trip force-opens the breaker immediately, without waiting for the
// failure threshold. The gateway uses it when a replica *declares*
// unavailability (a draining 503): the replica has said it will refuse
// work until it restarts, so counting further failures toward the
// threshold only wastes requests. The normal half-open probe after
// Cooldown is how the target re-enters rotation.
func (b *Breaker) Trip() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.probing = false
	b.open()
}

// BreakerSet is a keyed collection of breakers sharing one
// threshold/cooldown configuration — one breaker per target address,
// created on first use. The gateway keeps one per replica so an
// unreachable or draining replica is taken out of rotation without
// affecting routing to the others. Safe for concurrent use.
type BreakerSet struct {
	mu        sync.Mutex
	threshold int
	cooldown  time.Duration
	now       func() time.Time
	m         map[string]*Breaker
}

// NewBreakerSet builds a set whose breakers open after threshold
// consecutive failures (minimum 1) and allow a half-open probe after
// cooldown.
func NewBreakerSet(threshold int, cooldown time.Duration) *BreakerSet {
	return &BreakerSet{
		threshold: threshold,
		cooldown:  cooldown,
		now:       time.Now,
		m:         make(map[string]*Breaker),
	}
}

// SetClock replaces the clock used by every breaker in the set —
// existing and future — for deterministic tests.
func (s *BreakerSet) SetClock(now func() time.Time) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.now = now
	for _, b := range s.m {
		b.SetClock(now)
	}
}

// Get returns the breaker for key, creating it (closed) on first use.
func (s *BreakerSet) Get(key string) *Breaker {
	s.mu.Lock()
	defer s.mu.Unlock()
	b, ok := s.m[key]
	if !ok {
		b = NewBreaker(s.threshold, s.cooldown)
		b.SetClock(s.now)
		s.m[key] = b
	}
	return b
}

// States reports every known key's breaker state ("closed", "open",
// "half-open") — the gateway's /ring debug endpoint exposes this so an
// operator can see which replicas are out of rotation.
func (s *BreakerSet) States() map[string]string {
	s.mu.Lock()
	keys := make([]string, 0, len(s.m))
	breakers := make([]*Breaker, 0, len(s.m))
	for k, b := range s.m {
		keys = append(keys, k)
		breakers = append(breakers, b)
	}
	s.mu.Unlock()
	out := make(map[string]string, len(keys))
	for i, k := range keys {
		out[k] = breakers[i].State()
	}
	return out
}
