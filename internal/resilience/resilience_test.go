package resilience

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
	"time"
)

func TestZeroPolicySingleAttempt(t *testing.T) {
	rt := NewRetryer(Policy{}, 1)
	calls := 0
	err := rt.Do(context.Background(), func(context.Context) error {
		calls++
		return errors.New("boom")
	}, nil)
	if calls != 1 {
		t.Fatalf("zero policy made %d attempts, want 1", calls)
	}
	if err == nil || err.Error() != "boom" {
		t.Fatalf("err = %v", err)
	}
}

func TestRetryBudgetAndSuccess(t *testing.T) {
	rt := NewRetryer(Policy{MaxRetries: 3}, 1)
	calls := 0
	err := rt.Do(context.Background(), func(context.Context) error {
		calls++
		if calls < 3 {
			return errors.New("transient")
		}
		return nil
	}, nil)
	if err != nil || calls != 3 {
		t.Fatalf("err=%v calls=%d, want nil/3", err, calls)
	}

	calls = 0
	rt = NewRetryer(Policy{MaxRetries: 2}, 1)
	err = rt.Do(context.Background(), func(context.Context) error {
		calls++
		return errors.New("permanent-ish")
	}, nil)
	if err == nil || calls != 3 {
		t.Fatalf("err=%v calls=%d, want error after 3 attempts", err, calls)
	}
}

func TestNonRetryableStopsImmediately(t *testing.T) {
	rt := NewRetryer(Policy{MaxRetries: 5}, 1)
	fatal := errors.New("fatal")
	calls := 0
	err := rt.Do(context.Background(), func(context.Context) error {
		calls++
		return fatal
	}, func(err error) bool { return !errors.Is(err, fatal) })
	if !errors.Is(err, fatal) || calls != 1 {
		t.Fatalf("err=%v calls=%d, want fatal after 1 attempt", err, calls)
	}
}

// TestDelayDeterministic pins the jittered backoff schedule for a
// fixed seed: two retryers with the same policy and seed must produce
// the same delays, and a different seed must diverge.
func TestDelayDeterministic(t *testing.T) {
	p := Policy{MaxRetries: 4, BaseDelay: 100 * time.Millisecond, Jitter: 0.25}
	a, b := NewRetryer(p, 42), NewRetryer(p, 42)
	c := NewRetryer(p, 43)
	var diverged bool
	for i := 1; i <= 4; i++ {
		da, db, dc := a.Delay(i), b.Delay(i), c.Delay(i)
		if da != db {
			t.Fatalf("attempt %d: same seed gave %v and %v", i, da, db)
		}
		if da != dc {
			diverged = true
		}
		// ±25% of 100ms·2^(i-1).
		base := time.Duration(100*time.Millisecond) << uint(i-1)
		if da < base*3/4 || da > base*5/4 {
			t.Fatalf("attempt %d: delay %v outside ±25%% of %v", i, da, base)
		}
	}
	if !diverged {
		t.Fatal("different seeds never diverged")
	}
}

func TestDelayCapAndZeroBase(t *testing.T) {
	rt := NewRetryer(Policy{MaxRetries: 10, BaseDelay: 10 * time.Millisecond, MaxDelay: 25 * time.Millisecond}, 1)
	if d := rt.Delay(6); d != 25*time.Millisecond {
		t.Fatalf("capped delay = %v, want 25ms", d)
	}
	rt = NewRetryer(Policy{MaxRetries: 3}, 1)
	if d := rt.Delay(2); d != 0 {
		t.Fatalf("zero BaseDelay delay = %v, want 0", d)
	}
}

// hintedErr carries a server Retry-After hint.
type hintedErr struct{ d time.Duration }

func (e *hintedErr) Error() string             { return fmt.Sprintf("shed (retry after %v)", e.d) }
func (e *hintedErr) RetryAfter() time.Duration { return e.d }

// TestRetryAfterHintWins checks Do waits the server's hint when it
// exceeds the local backoff.
func TestRetryAfterHintWins(t *testing.T) {
	rt := NewRetryer(Policy{MaxRetries: 1, BaseDelay: time.Millisecond}, 1)
	var slept []time.Duration
	rt.SetSleep(func(_ context.Context, d time.Duration) bool {
		slept = append(slept, d)
		return true
	})
	calls := 0
	err := rt.Do(context.Background(), func(context.Context) error {
		calls++
		if calls == 1 {
			return &hintedErr{d: 3 * time.Second}
		}
		return nil
	}, nil)
	if err != nil || calls != 2 {
		t.Fatalf("err=%v calls=%d", err, calls)
	}
	if len(slept) != 1 || slept[0] != 3*time.Second {
		t.Fatalf("slept %v, want the 3s server hint", slept)
	}
}

func TestDoStopsOnContextCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	rt := NewRetryer(Policy{MaxRetries: 10, BaseDelay: time.Hour}, 1)
	calls := 0
	go func() {
		time.Sleep(10 * time.Millisecond)
		cancel()
	}()
	err := rt.Do(ctx, func(context.Context) error {
		calls++
		return errors.New("keep trying")
	}, nil)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if calls != 1 {
		t.Fatalf("calls = %d, want 1 (cancel fired during the first backoff)", calls)
	}
}

// TestBreakerLifecycle walks closed → open → half-open → closed and
// half-open → open with a fake clock, so every transition is
// deterministic.
func TestBreakerLifecycle(t *testing.T) {
	now := time.Unix(0, 0)
	b := NewBreaker(3, 10*time.Second)
	b.SetClock(func() time.Time { return now })

	for i := 0; i < 2; i++ {
		if err := b.Allow(); err != nil {
			t.Fatalf("closed breaker refused attempt %d: %v", i, err)
		}
		b.Record(true)
	}
	if got := b.State(); got != "closed" {
		t.Fatalf("state %q below threshold, want closed", got)
	}
	if err := b.Allow(); err != nil {
		t.Fatal(err)
	}
	b.Record(true) // third consecutive failure: opens
	if got := b.State(); got != "open" {
		t.Fatalf("state %q after threshold failures, want open", got)
	}
	if err := b.Allow(); !errors.Is(err, ErrBreakerOpen) {
		t.Fatalf("open breaker allowed an attempt (err=%v)", err)
	}

	// Cooldown elapses: exactly one probe allowed.
	now = now.Add(11 * time.Second)
	if err := b.Allow(); err != nil {
		t.Fatalf("half-open probe refused: %v", err)
	}
	if err := b.Allow(); !errors.Is(err, ErrBreakerOpen) {
		t.Fatal("second concurrent probe allowed")
	}
	b.Record(true) // probe failed: reopen
	if got := b.State(); got != "open" {
		t.Fatalf("state %q after failed probe, want open", got)
	}
	if err := b.Allow(); !errors.Is(err, ErrBreakerOpen) {
		t.Fatal("reopened breaker allowed an attempt inside the new cooldown")
	}

	// Second cooldown, successful probe: closed again.
	now = now.Add(11 * time.Second)
	if err := b.Allow(); err != nil {
		t.Fatalf("second probe refused: %v", err)
	}
	b.Record(false)
	if got := b.State(); got != "closed" {
		t.Fatalf("state %q after successful probe, want closed", got)
	}
	if err := b.Allow(); err != nil {
		t.Fatalf("closed breaker refused: %v", err)
	}
	b.Record(false)
	if got := b.Opens(); got != 2 {
		t.Fatalf("Opens() = %d, want 2", got)
	}
}

func TestBreakerSuccessResetsStreak(t *testing.T) {
	b := NewBreaker(2, time.Minute)
	b.Record(true)
	b.Record(false)
	b.Record(true)
	if got := b.State(); got != "closed" {
		t.Fatalf("state %q, want closed (streak was broken)", got)
	}
}

func TestHedgedFirstWins(t *testing.T) {
	calls := 0
	v, err := Hedged(context.Background(), time.Hour, func(context.Context) (int, error) {
		calls++
		return 7, nil
	})
	if err != nil || v != 7 || calls != 1 {
		t.Fatalf("v=%d err=%v calls=%d", v, err, calls)
	}
}

// TestHedgedSecondRescues blocks the first attempt until cancelled
// and lets the hedge answer: the caller gets the hedge's result.
func TestHedgedSecondRescues(t *testing.T) {
	first := make(chan struct{})
	var attempt atomic.Int64
	v, err := Hedged(context.Background(), time.Millisecond, func(ctx context.Context) (string, error) {
		if attempt.Add(1) == 1 {
			<-first // blocks until the winner's defer cancels hctx... released below
			select {
			case <-ctx.Done():
				return "", ctx.Err()
			default:
				return "slow", nil
			}
		}
		return "hedge", nil
	})
	close(first)
	if err != nil || v != "hedge" {
		t.Fatalf("v=%q err=%v, want the hedge's result", v, err)
	}
}

func TestHedgedBothFail(t *testing.T) {
	boom := errors.New("boom")
	_, err := Hedged(context.Background(), time.Microsecond, func(ctx context.Context) (int, error) {
		time.Sleep(2 * time.Millisecond)
		return 0, boom
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
}

func TestHedgedDisabled(t *testing.T) {
	calls := 0
	_, err := Hedged(context.Background(), 0, func(context.Context) (int, error) {
		calls++
		return 0, nil
	})
	if err != nil || calls != 1 {
		t.Fatalf("err=%v calls=%d", err, calls)
	}
}
