package resilience

import (
	"errors"
	"sync"
	"time"
)

// ErrBreakerOpen reports that the circuit breaker refused an attempt:
// the target failed ConsecutiveFailures times in a row recently, and
// the cooldown has not yet elapsed. Clients surface it instead of
// hammering a dead or draining daemon; cmd/hmeansctl maps it to the
// "unavailable" exit code the same way it maps a 503.
var ErrBreakerOpen = errors.New("resilience: circuit breaker open")

// breakerState is the classic three-state machine.
type breakerState int

const (
	breakerClosed breakerState = iota
	breakerOpen
	breakerHalfOpen
)

// Breaker is a half-open circuit breaker: Threshold consecutive
// failures open it; after Cooldown one probe attempt is allowed
// (half-open), and its outcome decides between closing again and
// re-opening for another cooldown. Safe for concurrent use — the
// closed-loop load workers share one per run so a dead daemon is
// detected once, not once per worker.
type Breaker struct {
	mu        sync.Mutex
	threshold int
	cooldown  time.Duration
	now       func() time.Time

	state    breakerState
	failures int       // consecutive failures while closed
	openedAt time.Time // when the breaker last opened
	probing  bool      // a half-open probe is in flight
	opens    int64     // times the breaker opened (for reports/metrics)
}

// NewBreaker builds a breaker that opens after threshold consecutive
// failures (minimum 1) and allows a probe after cooldown.
func NewBreaker(threshold int, cooldown time.Duration) *Breaker {
	if threshold < 1 {
		threshold = 1
	}
	return &Breaker{threshold: threshold, cooldown: cooldown, now: time.Now}
}

// SetClock replaces the breaker's clock for deterministic tests.
func (b *Breaker) SetClock(now func() time.Time) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.now = now
}

// Allow asks whether an attempt may proceed. It returns nil when the
// breaker is closed, or when it is open but the cooldown has elapsed
// and this caller won the single half-open probe slot; otherwise
// ErrBreakerOpen. Every nil return must be matched by a Record call
// with the attempt's outcome.
func (b *Breaker) Allow() error {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case breakerClosed:
		return nil
	case breakerOpen:
		if b.now().Sub(b.openedAt) < b.cooldown {
			return ErrBreakerOpen
		}
		b.state = breakerHalfOpen
		b.probing = true
		return nil
	default: // half-open
		if b.probing {
			return ErrBreakerOpen // one probe at a time
		}
		b.probing = true
		return nil
	}
}

// Record reports an attempt's outcome. failed=true counts toward the
// threshold (and re-opens a half-open breaker immediately);
// failed=false resets the streak and closes a half-open breaker.
func (b *Breaker) Record(failed bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.state == breakerHalfOpen {
		b.probing = false
		if failed {
			b.open()
		} else {
			b.state = breakerClosed
			b.failures = 0
		}
		return
	}
	if !failed {
		b.failures = 0
		return
	}
	b.failures++
	if b.state == breakerClosed && b.failures >= b.threshold {
		b.open()
	}
}

// open transitions to the open state (mu held).
func (b *Breaker) open() {
	b.state = breakerOpen
	b.openedAt = b.now()
	b.failures = 0
	b.opens++
}

// Opens reports how many times the breaker has opened.
func (b *Breaker) Opens() int64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.opens
}

// State reports the breaker's current state as a string (for
// metrics and reports): "closed", "open" or "half-open".
func (b *Breaker) State() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case breakerOpen:
		return "open"
	case breakerHalfOpen:
		return "half-open"
	}
	return "closed"
}
