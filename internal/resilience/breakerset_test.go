package resilience

import (
	"testing"
	"time"
)

func TestBreakerTrip(t *testing.T) {
	b := NewBreaker(5, time.Minute)
	if b.State() != "closed" {
		t.Fatalf("fresh breaker state = %q", b.State())
	}
	// Trip bypasses the threshold entirely: one declared drain is
	// enough, no five-failure streak needed.
	b.Trip()
	if b.State() != "open" {
		t.Fatalf("tripped breaker state = %q, want open", b.State())
	}
	if b.Allow() == nil {
		t.Fatal("tripped breaker allowed an attempt inside the cooldown")
	}
	if b.Opens() != 1 {
		t.Fatalf("opens = %d, want 1", b.Opens())
	}
}

func TestBreakerTripDuringHalfOpenProbe(t *testing.T) {
	base := time.Unix(0, 0)
	now := base
	b := NewBreaker(1, time.Minute)
	b.SetClock(func() time.Time { return now })
	b.Record(true) // open
	now = now.Add(2 * time.Minute)
	if err := b.Allow(); err != nil {
		t.Fatalf("half-open probe refused: %v", err)
	}
	// A Trip while the probe is in flight must clear the probing flag,
	// or the next half-open window would deadlock with no probe slot.
	b.Trip()
	now = now.Add(2 * time.Minute)
	if err := b.Allow(); err != nil {
		t.Fatalf("post-trip probe refused: %v", err)
	}
	b.Record(false)
	if b.State() != "closed" {
		t.Fatalf("state after successful probe = %q, want closed", b.State())
	}
}

func TestBreakerSet(t *testing.T) {
	s := NewBreakerSet(2, time.Minute)
	a := s.Get("http://r0")
	if a != s.Get("http://r0") {
		t.Fatal("Get is not stable per key")
	}
	if a == s.Get("http://r1") {
		t.Fatal("distinct keys share a breaker")
	}
	a.Record(true)
	a.Record(true)
	states := s.States()
	if states["http://r0"] != "open" || states["http://r1"] != "closed" {
		t.Fatalf("states = %v", states)
	}
}

func TestBreakerSetClock(t *testing.T) {
	s := NewBreakerSet(1, time.Minute)
	early := s.Get("early")
	base := time.Unix(0, 0)
	now := base
	s.SetClock(func() time.Time { return now })
	late := s.Get("late")

	// The injected clock must govern members created both before and
	// after SetClock.
	for _, b := range []*Breaker{early, late} {
		b.Record(true)
		if b.Allow() == nil {
			t.Fatal("open breaker allowed inside cooldown")
		}
		now = now.Add(2 * time.Minute)
		if err := b.Allow(); err != nil {
			t.Fatalf("cooldown elapsed on fake clock but probe refused: %v", err)
		}
		b.Record(false)
		now = base
	}
}
