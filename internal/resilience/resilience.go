// Package resilience provides the client-side resilience primitives
// the scoring tier's clients share: bounded retry with seeded,
// jittered exponential backoff; a half-open circuit breaker; and
// hedged requests. cmd/hmeansctl and internal/load's closed-loop
// workers build their transport behavior from these three pieces so
// the policies — and the failure vocabulary — stay identical across
// every client of hmeansd.
//
// Determinism follows the same discipline as internal/rng and
// simbench.RetryPolicy: every delay is a pure function of (Policy,
// Seed, call order), never of wall-clock or the global math/rand, so
// a chaos test that replays a seed replays the exact retry schedule.
// The breaker's clock and every sleep are injectable for the same
// reason.
package resilience

import (
	"context"
	"errors"
	"time"

	"hmeans/internal/rng"
)

// Policy shapes a Retryer: how many retries, and how the pauses
// between them grow. The zero value retries nothing and sleeps
// nothing — bit-identical to calling the attempt function once.
type Policy struct {
	// MaxRetries bounds re-attempts after the first try; <= 0 means a
	// single attempt.
	MaxRetries int
	// BaseDelay is the backoff before the first retry; each further
	// retry multiplies it by Multiplier. Zero disables sleeping
	// entirely (and draws no jitter), keeping tests instant and
	// rand-free.
	BaseDelay time.Duration
	// MaxDelay caps the grown backoff before jitter; 0 means no cap.
	MaxDelay time.Duration
	// Multiplier is the per-retry growth factor; values <= 1 default
	// to 2 (plain exponential doubling).
	Multiplier float64
	// Jitter spreads each delay by ±Jitter (a fraction, e.g. 0.25 for
	// ±25%), drawn from the Retryer's seeded stream. 0 means none.
	// Values outside [0, 1) are clamped into it.
	Jitter float64
}

// Retryer executes attempts under a Policy. It is not safe for
// concurrent use — each worker owns one, so the jitter stream stays
// a pure function of (seed, attempt order) per worker.
type Retryer struct {
	p     Policy
	r     *rng.Source
	sleep func(ctx context.Context, d time.Duration) bool
}

// NewRetryer builds a Retryer whose jitter stream depends only on
// seed.
func NewRetryer(p Policy, seed uint64) *Retryer {
	if p.Multiplier <= 1 {
		p.Multiplier = 2
	}
	if p.Jitter < 0 {
		p.Jitter = 0
	}
	if p.Jitter >= 1 {
		p.Jitter = 0.999
	}
	return &Retryer{p: p, r: rng.New(seed), sleep: sleepCtx}
}

// SetSleep replaces the context-aware sleep for tests; fn reports
// whether the full wait completed (false: ctx fired).
func (rt *Retryer) SetSleep(fn func(ctx context.Context, d time.Duration) bool) { rt.sleep = fn }

// Delay returns the pause before retry `attempt` (1-based): an
// exponential series on BaseDelay, capped at MaxDelay, then spread by
// ±Jitter from the seeded stream. It consumes one jitter draw per
// call when Jitter > 0, so the schedule is reproducible only when
// attempts are made in order — which a single-owner Retryer
// guarantees.
func (rt *Retryer) Delay(attempt int) time.Duration {
	p := rt.p
	if p.BaseDelay <= 0 || attempt < 1 {
		return 0
	}
	d := float64(p.BaseDelay)
	for i := 1; i < attempt; i++ {
		d *= p.Multiplier
		if p.MaxDelay > 0 && d >= float64(p.MaxDelay) {
			d = float64(p.MaxDelay)
			break
		}
	}
	if p.MaxDelay > 0 && d > float64(p.MaxDelay) {
		d = float64(p.MaxDelay)
	}
	if p.Jitter > 0 {
		// Uniform in [1-Jitter, 1+Jitter): same shape as
		// simbench.RetryPolicy's ±25% spread.
		d *= 1 - p.Jitter + 2*p.Jitter*rt.r.Float64()
	}
	return time.Duration(d)
}

// RetryAfter is the marker a typed error can implement to carry a
// server-issued retry hint (hmeansd's Retry-After on 429/503). Do
// waits the larger of the hint and its own backoff before the next
// attempt, so a polite client never comes back earlier than the
// server asked.
type RetryAfter interface {
	error
	RetryAfter() time.Duration
}

// Do runs attempt up to 1+MaxRetries times. retryable says whether an
// error is worth another attempt (nil means every error is). Between
// attempts it sleeps the larger of the backoff and any RetryAfter
// hint the error carries; a context cancellation during the sleep (or
// reported by attempt itself) ends the loop with that error. The
// returned error is the last attempt's.
func (rt *Retryer) Do(ctx context.Context, attempt func(ctx context.Context) error, retryable func(error) bool) error {
	var err error
	for a := 0; ; a++ {
		err = attempt(ctx)
		if err == nil {
			return nil
		}
		if ctx.Err() != nil || errors.Is(err, context.Canceled) {
			return err
		}
		if a >= rt.p.MaxRetries || (retryable != nil && !retryable(err)) {
			return err
		}
		d := rt.Delay(a + 1)
		var ra RetryAfter
		if errors.As(err, &ra) && ra.RetryAfter() > d {
			d = ra.RetryAfter()
		}
		if d > 0 && !rt.sleep(ctx, d) {
			return ctx.Err()
		}
	}
}

// sleepCtx waits d or until ctx fires; it reports whether the full
// wait completed.
func sleepCtx(ctx context.Context, d time.Duration) bool {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return true
	case <-ctx.Done():
		return false
	}
}
