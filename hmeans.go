// Package hmeans implements the hierarchical means of Yoo, Lee, Lee
// and Chow, "Hierarchical Means: Single Number Benchmarking with
// Workload Cluster Analysis" (IISWC 2007): benchmark-suite scores
// that incorporate workload-cluster information to cancel the bias
// introduced by redundant workloads.
//
// The package is a thin facade over the implementation packages under
// internal/: scoring (hierarchical/plain/weighted means), the full
// cluster-detection pipeline (characterization preprocessing →
// self-organizing map → agglomerative hierarchical clustering), and
// the simulated benchmarking substrate used to reproduce the paper's
// case study.
//
// # Scoring
//
// Given per-workload scores and a clustering, the hierarchical mean
// first reduces each cluster to a single representative with an inner
// mean, then averages the representatives with an outer mean of the
// same family:
//
//	scores := []float64{4.75, 5.32, 1.09, 1.19}       // speedups
//	c, _ := hmeans.NewClustering([]int{0, 0, 1, 1})   // two clusters
//	score, _ := hmeans.HGM(scores, c)                 // hierarchical geometric mean
//
// With singleton clusters every hierarchical mean degenerates to its
// plain counterpart (hmeans.PlainMean).
//
// # Cluster detection
//
// When no clustering is known a priori, DetectClusters runs the
// paper's pipeline on a characterization table (OS counters or
// method-usage bits):
//
//	table, _ := hmeans.NewTable(names, counters, rows)
//	p, _ := hmeans.DetectClusters(table, hmeans.PipelineConfig{})
//	score, _ := p.ScoreAtK(hmeans.Geometric, scores, 6)
package hmeans

import (
	"context"

	"hmeans/internal/chars"
	"hmeans/internal/core"
	"hmeans/internal/vecmath"
)

// MeanKind selects the mean family (Geometric, Arithmetic, Harmonic).
type MeanKind = core.MeanKind

// Mean families.
const (
	// Geometric selects the hierarchical geometric mean (HGM), the
	// paper's case-study metric.
	Geometric = core.Geometric
	// Arithmetic selects the hierarchical arithmetic mean (HAM).
	Arithmetic = core.Arithmetic
	// Harmonic selects the hierarchical harmonic mean (HHM).
	Harmonic = core.Harmonic
)

// Clustering assigns each workload to a cluster label in [0, K).
type Clustering = core.Clustering

// NewClustering validates dense labels and returns a Clustering.
func NewClustering(labels []int) (Clustering, error) { return core.NewClustering(labels) }

// Singletons returns the clustering with every workload alone — the
// degenerate case under which hierarchical means equal plain means.
func Singletons(n int) Clustering { return core.Singletons(n) }

// OneCluster returns the clustering with all n workloads together.
func OneCluster(n int) Clustering { return core.OneCluster(n) }

// HierarchicalMean computes the hierarchical mean of the given family
// over the scores partitioned by c.
func HierarchicalMean(kind MeanKind, scores []float64, c Clustering) (float64, error) {
	return core.HierarchicalMean(kind, scores, c)
}

// PlainMean computes the flat (non-hierarchical) mean.
func PlainMean(kind MeanKind, scores []float64) (float64, error) {
	return core.PlainMean(kind, scores)
}

// HGM is the hierarchical geometric mean.
func HGM(scores []float64, c Clustering) (float64, error) { return core.HGM(scores, c) }

// HAM is the hierarchical arithmetic mean.
func HAM(scores []float64, c Clustering) (float64, error) { return core.HAM(scores, c) }

// HHM is the hierarchical harmonic mean.
func HHM(scores []float64, c Clustering) (float64, error) { return core.HHM(scores, c) }

// EquivalentWeights returns the per-workload weights under which the
// weighted mean of the same family equals the hierarchical mean —
// the objective replacement for the paper's negotiated weights.
func EquivalentWeights(c Clustering) []float64 { return core.EquivalentWeights(c) }

// Table is a named workloads × features characterization matrix.
type Table = chars.Table

// NewTable wraps a characterization matrix with validation.
func NewTable(workloads, features []string, rows [][]float64) (*Table, error) {
	return chars.NewTable(workloads, features, rows)
}

// FromBits builds a Table from a boolean usage matrix (e.g. method
// coverage).
func FromBits(workloads, features []string, bits [][]bool) (*Table, error) {
	return chars.FromBits(workloads, features, bits)
}

// CharKind selects the preprocessing recipe for a characterization.
type CharKind = core.CharKind

// Characterization kinds.
const (
	// Counters marks continuous measurements (SAR-style counters).
	Counters = core.Counters
	// Bits marks usage bit vectors (method utilization).
	Bits = core.Bits
)

// PipelineConfig configures cluster detection; the zero value uses
// the paper's choices (counter preprocessing, SOM reduction sized to
// the sample count, complete linkage, Euclidean distance). Set
// Parallelism to shard the pipeline's hot kernels (batch-SOM
// training, placement, distance matrix, linkage scans) across that
// many workers — every parallel kernel reduces deterministically, so
// results are bit-identical for any worker count.
type PipelineConfig = core.PipelineConfig

// Pipeline is a completed cluster detection: preprocessed table,
// trained SOM, positions and dendrogram, with scoring helpers.
type Pipeline = core.Pipeline

// DetectClusters runs the paper's pipeline: preprocessing → SOM →
// hierarchical clustering.
func DetectClusters(table *Table, cfg PipelineConfig) (*Pipeline, error) {
	return core.DetectClusters(table, cfg)
}

// DetectClustersCtx is DetectClusters with cooperative cancellation:
// the context is honoured between pipeline stages, between SOM
// training epochs and between linkage merge steps. A context that
// never fires yields results bit-identical to DetectClusters.
func DetectClustersCtx(ctx context.Context, table *Table, cfg PipelineConfig) (*Pipeline, error) {
	return core.DetectClustersCtx(ctx, table, cfg)
}

// ErrNonFinite marks input containing NaN or ±Inf values.
var ErrNonFinite = core.ErrNonFinite

// ErrZeroVariance marks a characterization left featureless by
// preprocessing: nothing varies, so nothing can be clustered.
var ErrZeroVariance = core.ErrZeroVariance

// DataError locates invalid input data (workload, feature, value).
// The cmd/ binaries exit with status 3 on these.
type DataError = core.DataError

// Quarantine records one workload dropped by the pipeline's
// graceful-degradation mode (PipelineConfig.Quarantine).
type Quarantine = core.Quarantine

// ValidateTable returns a *DataError naming the first non-finite cell
// of a characterization table, or nil when the table is clean.
func ValidateTable(t *Table) error { return core.ValidateTable(t) }

// ValidateScores returns a *DataError for the first non-finite score.
func ValidateScores(scores []float64) error { return core.ValidateScores(scores) }

// RedundancyImpact quantifies score drift under workload cloning.
type RedundancyImpact = core.RedundancyImpact

// InjectRedundancy appends clones of a workload to scores and
// clustering (the paper's malicious-tweak scenario).
func InjectRedundancy(scores []float64, c Clustering, victim, copies int) ([]float64, Clustering, error) {
	return core.InjectRedundancy(scores, c, victim, copies)
}

// RedundancySweep measures plain-vs-hierarchical drift as clones of
// the victim workload are injected.
func RedundancySweep(kind MeanKind, scores []float64, c Clustering, victim, maxCopies int) ([]RedundancyImpact, error) {
	return core.RedundancySweep(kind, scores, c, victim, maxCopies)
}

// Subset is a one-representative-per-cluster suite reduction.
type Subset = core.Subset

// SelectSubset picks each cluster's medoid in the reduced space —
// cluster-based benchmark subsetting, the companion application of
// workload cluster analysis (prior work the paper cites uses cluster
// information this way; the hierarchical means reweight instead).
func SelectSubset(positions []vecmath.Vector, c Clustering) (Subset, error) {
	return core.SelectSubset(positions, c)
}

// SubsetError reports how closely the subset's plain mean tracks the
// full suite's hierarchical mean of the same family.
func SubsetError(kind MeanKind, full []float64, s Subset) (float64, error) {
	return core.SubsetError(kind, full, s)
}

// KRecommendation explains a recommended cluster count (quality sweep
// plus the paper's ratio-dampening signal).
type KRecommendation = core.KRecommendation

// Diversity summarizes how much unique behaviour a suite contains
// under a clustering (effective cluster count, redundancy fraction,
// largest-cluster share).
type Diversity = core.Diversity

// AnalyzeDiversity computes the diversity summary of a clustering —
// the quantitative suite-evaluation verdict the paper proposes.
func AnalyzeDiversity(c Clustering) (Diversity, error) { return core.AnalyzeDiversity(c) }

// Sensitivity reports how far the hierarchical mean can move under
// single-workload cluster reassignments.
type Sensitivity = core.Sensitivity

// ClusteringSensitivity measures the robustness of a hierarchical
// mean to plausible clustering mistakes: it tries every
// single-workload move to another cluster and reports the worst score
// shift.
func ClusteringSensitivity(kind MeanKind, scores []float64, c Clustering) (Sensitivity, error) {
	return core.ClusteringSensitivity(kind, scores, c)
}
