module hmeans

go 1.22
