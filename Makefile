# Local targets mirror the CI gate (.github/workflows/ci.yml) exactly:
# a green `make ci` means a green pipeline.

GO ?= go

.PHONY: all build test race vet fmt lint staticcheck bench bench-json bench-gate bench-baseline bench-large memprofile trace chaos chaos-service fuzz serve-smoke cluster-smoke load-gate cover ci tidy-check

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

# fmt rewrites; lint (used by CI) only checks.
fmt:
	gofmt -w .

lint: vet staticcheck
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "files need gofmt:" >&2; echo "$$out" >&2; exit 1; \
	fi

# staticcheck runs when the binary is on PATH and degrades to a
# skip-with-notice otherwise, so `make lint` works on machines that
# never installed it. CI always runs it (the staticcheck job installs
# the pinned version below with `go install`).
STATICCHECK_VERSION := 2025.1.1
staticcheck:
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	else \
		echo "staticcheck not installed; skipping (CI pins $(STATICCHECK_VERSION))" >&2; \
	fi

# Every benchmark runs exactly once (the CI bench-smoke job); use
# `go test -bench=... -benchtime=...` directly for real measurements.
bench:
	$(GO) test -bench=. -benchtime=1x ./... | tee bench.txt

# trace mirrors the CI obs-trace job: run the case-study pipeline
# with tracing on, validate the trace and render the stage timings.
trace:
	$(GO) run ./cmd/benchsim -emit sar > sar.csv
	$(GO) run ./cmd/benchsim -emit speedups > speedups.csv
	$(GO) run ./cmd/hmeans -scores speedups.csv -chars sar.csv -k 6 \
		-obs.trace trace.jsonl
	$(GO) run ./cmd/report -validate-trace trace.jsonl
	$(GO) run ./cmd/report -timings trace.jsonl

# The benchmark-regression gate measures a fixed set of kernel
# benchmarks (stable, single-process) with min-of-5 sampling and
# -benchmem, then compares the result against the committed baseline:
# ns/op within a 20% noise budget, allocs/op with zero tolerance
# (allocation counts are deterministic, so any increase is real). To
# refresh the baseline after an intentional performance change:
# `make bench-baseline` on the reference hardware and commit
# BENCH_BASELINE.json (see README "Benchmark regression gate").
BENCH_PATTERN := ^(BenchmarkHGM|BenchmarkHAM|BenchmarkHHM|BenchmarkPlainGM|BenchmarkBMU|BenchmarkQuantizationError|BenchmarkCutK|BenchmarkSilhouette|BenchmarkRecommendK|BenchmarkTrainBatchSuiteScale|BenchmarkNewDendrogramSuiteScale|BenchmarkNewDendrogramLarge|BenchmarkServiceScoreDark|BenchmarkServiceScoreLogged)$$

bench-json:
	$(GO) test -bench '$(BENCH_PATTERN)' -benchmem -benchtime 50ms -count 5 -run '^$$' ./... | tee bench-raw.txt
	$(GO) run ./cmd/benchdiff -parse bench-raw.txt -o BENCH_PR.json

bench-gate: bench-json
	$(GO) run ./cmd/benchdiff -baseline BENCH_BASELINE.json -current BENCH_PR.json -max-regress 20

bench-baseline:
	$(GO) test -bench '$(BENCH_PATTERN)' -benchmem -benchtime 50ms -count 5 -run '^$$' ./... | tee bench-raw.txt
	$(GO) run ./cmd/benchdiff -parse bench-raw.txt -o BENCH_BASELINE.json

# bench-large runs the opt-in large-n measurements that are far too
# slow for CI: the n=10000 reference scan (minutes) and the n=100000
# NN-chain headline (tens of minutes, ~20 GB float32 condensed
# matrix). Both skip unless HMEANS_BENCH_LARGE is set, so they never
# fire from `make bench` or the gate; record wall-clock results in
# EXPERIMENTS.md ("Large-n campaign"), not in BENCH_BASELINE.json.
bench-large:
	HMEANS_BENCH_LARGE=1 $(GO) test ./internal/cluster \
		-bench '^(BenchmarkNewDendrogramScanLarge|BenchmarkNewDendrogramHundredK)$$' \
		-benchmem -benchtime 1x -count 1 -run '^$$' -timeout 120m | tee bench-large.txt

# memprofile captures heap profiles of the hot-kernel benchmarks for
# `go tool pprof`. All artifacts (*.prof, *.test) are gitignored.
memprofile:
	$(GO) test -bench '$(BENCH_PATTERN)' -benchmem -benchtime 50ms -run '^$$' \
		-memprofile mem-core.prof -o core.test ./internal/core
	$(GO) test -bench '$(BENCH_PATTERN)' -benchmem -benchtime 50ms -run '^$$' \
		-memprofile mem-som.prof -o som.test ./internal/som
	$(GO) test -bench '$(BENCH_PATTERN)' -benchmem -benchtime 50ms -run '^$$' \
		-memprofile mem-cluster.prof -o cluster.test ./internal/cluster
	@echo "inspect with: $(GO) tool pprof -sample_index=alloc_objects <pkg>.test mem-<pkg>.prof"

# serve-smoke mirrors the CI serve-smoke job: boot hmeansd, score the
# case study through hmeansctl, require line-identical output to the
# batch CLI, byte-identical cache hits, and a valid request trace.
serve-smoke:
	sh scripts/serve_smoke.sh

# cluster-smoke mirrors the CI cluster-smoke job: two hmeansd replicas
# behind an hmeansgw gateway — byte identity through the routing hop,
# cross-replica singleflight (one fleet-wide compute for a concurrent
# burst), 2-hop request-ID correlation, and a mid-load replica SIGTERM
# that must surface zero untyped 5xx.
cluster-smoke:
	sh scripts/cluster_smoke.sh

# load-gate mirrors the CI load-slo job: drive the paper's
# 13-workload case study through a self-managed hmeansd with the load
# harness (open loop, bursty pareto arrivals, the default
# hit/miss/invalid mix) and gate the run on the committed slo.json —
# p99 tail latency and error rate, not means. The rate (30 rps) was
# sized with the harness itself so a 1-CPU runner sustains it with
# ~5x p99 headroom; see EXPERIMENTS.md "Sizing the scoring daemon".
# The run is seeded, so the request sequence is identical everywhere.
load-gate:
	$(GO) run ./cmd/benchsim -emit sar > sar.csv
	$(GO) run ./cmd/benchsim -emit speedups > speedups.csv
	$(GO) run ./cmd/hmeansload -scores speedups.csv -chars sar.csv \
		-n 240 -rps 30 -dist pareto -seed 2007 \
		-o load-report.json -check slo.json

# cover fails when total line coverage drops below the committed
# baseline (the seed repo's figure; ratchet it up, never down).
COVER_BASELINE := 86.8
cover:
	$(GO) test -count=1 -coverprofile=coverage.out ./...
	@total=$$($(GO) tool cover -func=coverage.out | awk '/^total:/ {sub(/%/,"",$$3); print $$3}'); \
	echo "total coverage: $$total% (baseline $(COVER_BASELINE)%)"; \
	awk -v t="$$total" -v b="$(COVER_BASELINE)" 'BEGIN { exit (t+0 < b+0) ? 1 : 0 }' \
		|| { echo "coverage fell below the $(COVER_BASELINE)% baseline" >&2; exit 1; }

# tidy-check mirrors the CI vet-job drift check: go.mod must already
# be tidy (the module is dependency-free, so there is no go.sum).
tidy-check:
	$(GO) mod tidy
	git diff --exit-code -- go.mod

# chaos mirrors the CI chaos job: the deterministic fault-injection
# suite (internal/faultinject) under the race detector.
chaos:
	$(GO) test -race -run Chaos ./...

# chaos-service mirrors the CI chaos-service job: the network-level
# chaos suite — a seeded TCP chaos proxy (drops, stalls, truncated and
# corrupted responses) in front of a live scoring service — under the
# race detector. Every fault must surface as a typed client error, a
# successful retry, or a breaker-open; on failure the test log carries
# the proxy's seeded fault schedule, which replays the run exactly.
chaos-service:
	$(GO) test -race -count=1 -run ChaosService ./internal/faultinject/

# fuzz smoke-runs every serialization fuzz target (the CI fuzz-smoke
# job). Go permits one -fuzz pattern per invocation, so one line per
# target; raise FUZZTIME for a real fuzzing session.
FUZZTIME ?= 20s
fuzz:
	$(GO) test -fuzz FuzzReadScores -fuzztime $(FUZZTIME) ./internal/dataio
	$(GO) test -fuzz FuzzReadMatrix -fuzztime $(FUZZTIME) ./internal/dataio
	$(GO) test -fuzz FuzzReadClusters -fuzztime $(FUZZTIME) ./internal/dataio
	$(GO) test -fuzz FuzzLoadMap -fuzztime $(FUZZTIME) ./internal/som
	$(GO) test -fuzz FuzzLoadDendrogram -fuzztime $(FUZZTIME) ./internal/cluster
	$(GO) test -fuzz FuzzRestoreSnapshot -fuzztime $(FUZZTIME) ./internal/service

ci: build lint tidy-check test race chaos chaos-service fuzz bench trace bench-gate serve-smoke cluster-smoke load-gate cover
