# Local targets mirror the CI gate (.github/workflows/ci.yml) exactly:
# a green `make ci` means a green pipeline.

GO ?= go

.PHONY: all build test race vet fmt lint bench trace chaos fuzz ci

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

# fmt rewrites; lint (used by CI) only checks.
fmt:
	gofmt -w .

lint: vet
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "files need gofmt:" >&2; echo "$$out" >&2; exit 1; \
	fi

# Every benchmark runs exactly once (the CI bench-smoke job); use
# `go test -bench=... -benchtime=...` directly for real measurements.
bench:
	$(GO) test -bench=. -benchtime=1x ./... | tee bench.txt

# trace mirrors the CI obs-trace job: run the case-study pipeline
# with tracing on, validate the trace and render the stage timings.
trace:
	$(GO) run ./cmd/benchsim -emit sar > sar.csv
	$(GO) run ./cmd/benchsim -emit speedups > speedups.csv
	$(GO) run ./cmd/hmeans -scores speedups.csv -chars sar.csv -k 6 \
		-obs.trace trace.jsonl
	$(GO) run ./cmd/report -validate-trace trace.jsonl
	$(GO) run ./cmd/report -timings trace.jsonl

# chaos mirrors the CI chaos job: the deterministic fault-injection
# suite (internal/faultinject) under the race detector.
chaos:
	$(GO) test -race -run Chaos ./...

# fuzz smoke-runs every serialization fuzz target (the CI fuzz-smoke
# job). Go permits one -fuzz pattern per invocation, so one line per
# target; raise FUZZTIME for a real fuzzing session.
FUZZTIME ?= 20s
fuzz:
	$(GO) test -fuzz FuzzReadScores -fuzztime $(FUZZTIME) ./internal/dataio
	$(GO) test -fuzz FuzzReadMatrix -fuzztime $(FUZZTIME) ./internal/dataio
	$(GO) test -fuzz FuzzReadClusters -fuzztime $(FUZZTIME) ./internal/dataio
	$(GO) test -fuzz FuzzLoadMap -fuzztime $(FUZZTIME) ./internal/som
	$(GO) test -fuzz FuzzLoadDendrogram -fuzztime $(FUZZTIME) ./internal/cluster

ci: build lint test race chaos bench trace
