# Local targets mirror the CI gate (.github/workflows/ci.yml) exactly:
# a green `make ci` means a green pipeline.

GO ?= go

.PHONY: all build test race vet fmt lint bench ci

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

# fmt rewrites; lint (used by CI) only checks.
fmt:
	gofmt -w .

lint: vet
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "files need gofmt:" >&2; echo "$$out" >&2; exit 1; \
	fi

# Every benchmark runs exactly once (the CI bench-smoke job); use
# `go test -bench=... -benchtime=...` directly for real measurements.
bench:
	$(GO) test -bench=. -benchtime=1x ./... | tee bench.txt

ci: build lint test race bench
