// Benchmark harness: one testing.B benchmark per paper table and
// figure (regenerating the artifact end to end), plus ablation
// benches for the design choices called out in DESIGN.md. The rows
// themselves are printed by cmd/experiments; these benches measure
// the cost of regenerating them and keep every code path exercised
// under -bench.
package hmeans_test

import (
	"io"
	"testing"

	"hmeans"
	"hmeans/internal/cluster"
	"hmeans/internal/core"
	"hmeans/internal/experiments"
	"hmeans/internal/obs"
	"hmeans/internal/pca"
	"hmeans/internal/simbench"
	"hmeans/internal/som"
	"hmeans/internal/vecmath"
)

// benchSuite lazily builds one shared experiment campaign.
var benchSuite *experiments.Suite

func suiteForBench(b *testing.B) *experiments.Suite {
	b.Helper()
	if benchSuite == nil {
		s, err := experiments.NewSuite(experiments.Config{})
		if err != nil {
			b.Fatal(err)
		}
		benchSuite = s
	}
	return benchSuite
}

func benchExperiment(b *testing.B, id string) {
	b.ReportAllocs()
	s := suiteForBench(b)
	e, ok := experiments.ByID(id)
	if !ok {
		b.Fatalf("unknown experiment %s", id)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := e.Run(s, io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Paper tables ---

func BenchmarkTableI(b *testing.B)   { benchExperiment(b, "tableI") }
func BenchmarkTableII(b *testing.B)  { benchExperiment(b, "tableII") }
func BenchmarkTableIII(b *testing.B) { benchExperiment(b, "tableIII") }
func BenchmarkTableIV(b *testing.B)  { benchExperiment(b, "tableIV") }
func BenchmarkTableV(b *testing.B)   { benchExperiment(b, "tableV") }
func BenchmarkTableVI(b *testing.B)  { benchExperiment(b, "tableVI") }

// --- Paper figures ---

func BenchmarkFig3(b *testing.B) { benchExperiment(b, "fig3") }
func BenchmarkFig4(b *testing.B) { benchExperiment(b, "fig4") }
func BenchmarkFig5(b *testing.B) { benchExperiment(b, "fig5") }
func BenchmarkFig6(b *testing.B) { benchExperiment(b, "fig6") }
func BenchmarkFig7(b *testing.B) { benchExperiment(b, "fig7") }
func BenchmarkFig8(b *testing.B) { benchExperiment(b, "fig8") }

// BenchmarkFullCampaign regenerates every artifact from scratch,
// including measurement and all three pipelines.
func BenchmarkFullCampaign(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s, err := experiments.NewSuite(experiments.Config{})
		if err != nil {
			b.Fatal(err)
		}
		if err := experiments.RunAll(s, io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Core scoring microbenchmarks ---

func benchScores() ([]float64, hmeans.Clustering) {
	scores := make([]float64, 13)
	labels := make([]int, 13)
	for i := range scores {
		scores[i] = 0.5 + float64(i)*0.37
		labels[i] = i % 5
	}
	c, _ := hmeans.NewClustering(labels)
	return scores, c
}

func BenchmarkHGM(b *testing.B) {
	b.ReportAllocs()
	scores, c := benchScores()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := hmeans.HGM(scores, c); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkHAM(b *testing.B) {
	b.ReportAllocs()
	scores, c := benchScores()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := hmeans.HAM(scores, c); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkHHM(b *testing.B) {
	b.ReportAllocs()
	scores, c := benchScores()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := hmeans.HHM(scores, c); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPlainGM(b *testing.B) {
	b.ReportAllocs()
	scores, _ := benchScores()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := hmeans.PlainMean(hmeans.Geometric, scores); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Ablations (DESIGN.md Section 5) ---

// BenchmarkAblationMeanFamily compares the three hierarchical mean
// families on the measured machine-A speedups and the SAR-A
// clustering.
func BenchmarkAblationMeanFamily(b *testing.B) {
	b.ReportAllocs()
	s := suiteForBench(b)
	p, err := s.Pipeline(experiments.SARMachineA)
	if err != nil {
		b.Fatal(err)
	}
	for _, kind := range []core.MeanKind{core.Geometric, core.Arithmetic, core.Harmonic} {
		kind := kind
		b.Run(kind.String(), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := p.ScoreAtK(kind, s.SpeedupsA, 6); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationLinkage compares linkage rules on the SAR-A SOM
// positions.
func BenchmarkAblationLinkage(b *testing.B) {
	b.ReportAllocs()
	s := suiteForBench(b)
	p, err := s.Pipeline(experiments.SARMachineA)
	if err != nil {
		b.Fatal(err)
	}
	for _, l := range []cluster.Linkage{cluster.Complete, cluster.Single, cluster.Average, cluster.Ward} {
		l := l
		b.Run(l.String(), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := cluster.NewDendrogram(p.Positions, vecmath.Euclidean, l); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationReduction compares the paper's SOM reduction
// against the prior-work PCA(2) baseline and against clustering the
// raw standardized vectors directly.
func BenchmarkAblationReduction(b *testing.B) {
	b.ReportAllocs()
	s := suiteForBench(b)
	p, err := s.Pipeline(experiments.SARMachineA)
	if err != nil {
		b.Fatal(err)
	}
	vectors := p.Prepared.Vectors()
	rows := make([][]float64, len(vectors))
	for i, v := range vectors {
		rows[i] = v
	}
	b.Run("som", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			m, err := som.Train(som.Config{Seed: 2007, Rows: 5, Cols: 4}, vectors)
			if err != nil {
				b.Fatal(err)
			}
			if _, err := cluster.NewDendrogram(m.Placements(vectors), vecmath.Euclidean, cluster.Complete); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("pca2", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			scores, _, err := pca.FitTransform(rows, 2)
			if err != nil {
				b.Fatal(err)
			}
			pts := make([]vecmath.Vector, len(scores))
			for j, sc := range scores {
				pts[j] = sc
			}
			if _, err := cluster.NewDendrogram(pts, vecmath.Euclidean, cluster.Complete); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("raw", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := cluster.NewDendrogram(vectors, vecmath.Euclidean, cluster.Complete); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkAblationGridSize measures SOM training across grid sizes
// (the stability/size trade-off discussed in som.GridFor).
func BenchmarkAblationGridSize(b *testing.B) {
	b.ReportAllocs()
	s := suiteForBench(b)
	p, err := s.Pipeline(experiments.SARMachineA)
	if err != nil {
		b.Fatal(err)
	}
	vectors := p.Prepared.Vectors()
	for _, g := range []struct{ r, c int }{{4, 4}, {5, 4}, {8, 8}, {10, 10}} {
		g := g
		b.Run(gridName(g.r, g.c), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := som.Train(som.Config{Rows: g.r, Cols: g.c, Seed: 1}, vectors); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func gridName(r, c int) string {
	return string(rune('0'+r)) + "x" + string(rune('0'+c))
}

// BenchmarkAblationTrainAlgorithm compares sequential and batch SOM
// training.
func BenchmarkAblationTrainAlgorithm(b *testing.B) {
	b.ReportAllocs()
	s := suiteForBench(b)
	p, err := s.Pipeline(experiments.SARMachineA)
	if err != nil {
		b.Fatal(err)
	}
	vectors := p.Prepared.Vectors()
	for _, alg := range []som.Algorithm{som.Sequential, som.Batch} {
		alg := alg
		b.Run(alg.String(), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := som.Train(som.Config{Rows: 5, Cols: 4, Seed: 1, Algorithm: alg}, vectors); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkRedundancySweep measures the malicious-tweak analysis.
func BenchmarkRedundancySweep(b *testing.B) {
	b.ReportAllocs()
	scores, c := benchScores()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := hmeans.RedundancySweep(hmeans.Geometric, scores, c, 0, 10); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkExtStability measures the cross-seed stability analysis
// (4 SOM retrainings per run).
func BenchmarkExtStability(b *testing.B) {
	b.ReportAllocs()
	s := suiteForBench(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Stability(experiments.SARMachineA, 4); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkExtConfidence measures the paired-bootstrap ratio
// analysis.
func BenchmarkExtConfidence(b *testing.B) {
	b.ReportAllocs()
	s := suiteForBench(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Confidence(experiments.SARMachineA, 6, 0.95, 500, uint64(i)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRecommendK measures the cluster-count recommendation over
// the paper suite.
func BenchmarkRecommendK(b *testing.B) {
	b.ReportAllocs()
	s := suiteForBench(b)
	p, err := s.Pipeline(experiments.SARMachineA)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := p.RecommendK(core.Geometric, s.SpeedupsA, s.SpeedupsB, 2, 8); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkClusteringSensitivity measures the reassignment-robustness
// analysis at k=6.
func BenchmarkClusteringSensitivity(b *testing.B) {
	b.ReportAllocs()
	s := suiteForBench(b)
	p, err := s.Pipeline(experiments.SARMachineA)
	if err != nil {
		b.Fatal(err)
	}
	c, err := p.ClusteringAtK(6)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.ClusteringSensitivity(core.Geometric, s.SpeedupsA, c); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Observability overhead ---

// benchPipeline runs the full cluster-detection pipeline plus one
// scoring cut, the unit of work the obs overhead comparison measures.
func benchPipeline(b *testing.B, o *obs.Observer) {
	s := suiteForBench(b)
	tab, err := simbench.SARTable(s.Workloads, simbench.MachineA(), simbench.SARSpec{Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p, err := hmeans.DetectClusters(tab, hmeans.PipelineConfig{
			SOM: som.Config{Seed: 2007},
			Obs: o,
		})
		if err != nil {
			b.Fatal(err)
		}
		if _, err := p.ScoreAtK(hmeans.Geometric, s.SpeedupsA, 6); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPipelineBare is the uninstrumented pipeline: no observer
// anywhere, the exact pre-obs hot path.
func BenchmarkPipelineBare(b *testing.B) {
	b.ReportAllocs()
	if obs.Default() != nil {
		b.Fatal("benchmark requires no default observer")
	}
	benchPipeline(b, nil)
}

// BenchmarkPipelineNoopObs is the same work with a no-op-sink
// observer attached: spans are created and timed, metrics recorded,
// everything discarded. The acceptance bar is staying within a few
// percent of BenchmarkPipelineBare.
func BenchmarkPipelineNoopObs(b *testing.B) {
	b.ReportAllocs()
	benchPipeline(b, obs.New())
}

// BenchmarkMeasurement measures the simulated 10-run measurement
// campaign for one machine.
func BenchmarkMeasurement(b *testing.B) {
	b.ReportAllocs()
	ws, _, err := simbench.CalibratedSuite()
	if err != nil {
		b.Fatal(err)
	}
	ref := simbench.Reference()
	a := simbench.MachineA()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := simbench.MeasuredSpeedups(ws, a, ref, 10, uint64(i)); err != nil {
			b.Fatal(err)
		}
	}
}
