package hmeans

import (
	"io"

	"hmeans/internal/chars"
	"hmeans/internal/cluster"
	"hmeans/internal/core"
	"hmeans/internal/report"
	"hmeans/internal/som"
	"hmeans/internal/stat"
)

// SOMConfig configures the self-organizing-map stage of the pipeline
// (grid shape, training length, seed, algorithm). The zero value uses
// the library defaults, including a grid sized to the sample count.
type SOMConfig = som.Config

// Interval is a two-sided confidence interval around a statistic.
type Interval = stat.Interval

// BootstrapScoreCI returns a percentile-bootstrap confidence interval
// for the geometric-mean suite score under workload resampling.
func BootstrapScoreCI(scores []float64, level float64, resamples int, seed uint64) (Interval, error) {
	return stat.BootstrapMeanCI(scores, level, resamples, seed)
}

// BootstrapRatioCI returns a paired-bootstrap confidence interval for
// the ratio of two machines' geometric-mean scores, resampling
// workloads with the per-workload pairing preserved. Attach this to
// any headline "machine A is X% faster" claim.
func BootstrapRatioCI(scoresA, scoresB []float64, level float64, resamples int, seed uint64) (Interval, error) {
	return stat.BootstrapRatioCI(scoresA, scoresB, level, resamples, seed)
}

// PairedPermutationTest returns the permutation-test p-value for the
// null hypothesis that two machines' per-workload scores are
// exchangeable (neither is systematically faster), plus the observed
// |log GM ratio| statistic.
func PairedPermutationTest(scoresA, scoresB []float64, permutations int, seed uint64) (pValue, observed float64, err error) {
	return stat.PairedPermutationTest(scoresA, scoresB, permutations, seed)
}

// Dendrogram is the agglomerative merge tree a Pipeline produces
// (Pipeline.Dendrogram); it supports cuts by cluster count or merging
// distance, quality sweeps and JSON serialization.
type Dendrogram = cluster.Dendrogram

// NestedMean generalizes the hierarchical means to several nesting
// levels: cut the pipeline's dendrogram at each cluster count in
// levels and average bottom-up (workloads → subclusters → clusters →
// suite). With one level it equals HierarchicalMean at that cut.
func NestedMean(kind MeanKind, scores []float64, d *Dendrogram, levels []int) (float64, error) {
	return core.NestedMean(kind, scores, d, levels)
}

// FeatureScore ranks one characterization feature's power to
// discriminate a clustering (η² ∈ [0, 1]).
type FeatureScore = chars.FeatureScore

// FeatureImportance scores every feature of a characterization table
// against cluster labels and returns the scores sorted by descending
// η² — which counters make the clusters.
func FeatureImportance(t *Table, labels []int) ([]FeatureScore, error) {
	return chars.FeatureImportance(t, labels)
}

// ReportInput bundles everything a full scoring report needs; see
// WriteReport.
type ReportInput = report.Input

// WriteReport renders a publishable scoring report: per-workload
// scores (with bootstrap intervals when run times are supplied), the
// detected cluster structure with a recommended cut and robustness
// note, and the hierarchical-mean sweep against the plain mean.
func WriteReport(w io.Writer, in ReportInput) error {
	return report.Write(w, in)
}
