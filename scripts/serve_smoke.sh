#!/bin/sh
# serve_smoke.sh — end-to-end service smoke test (the CI serve-smoke
# job, runnable locally as `make serve-smoke`).
#
# Boots hmeansd with tracing on, scores the paper's 13-workload case
# study through hmeansctl, and requires the rendered result to be
# line-identical to the batch hmeans CLI on the same inputs — the
# service and the CLI must never disagree about a mean. Also checks
# that a repeated request is answered from the cache with identical
# bytes, and validates the request trace the daemon wrote.
#
# On top of that it exercises the request-telemetry story end to end:
# one X-Request-ID chosen by hmeansctl and one reported by hmeansload
# are each traced through the daemon's structured access log and JSONL
# trace; /metrics is scraped in both JSON and Prometheus form and the
# exposition is validated; and an undersized second daemon proves shed
# 429s land in the access log with their shed reason and Retry-After.
#
# Crash-safety leg: the first daemon runs with -snapshot, so its
# graceful shutdown writes a durable cache snapshot; a warm restart
# from that snapshot must answer the same request as a cache hit with
# bytes identical to the pre-restart response.
#
# Artifacts land in $SMOKE_DIR (default: a fresh temp dir).
set -eu

SMOKE_DIR="${SMOKE_DIR:-$(mktemp -d)}"
echo "serve-smoke: artifacts in $SMOKE_DIR"

go build -o "$SMOKE_DIR/hmeansd" ./cmd/hmeansd
go build -o "$SMOKE_DIR/hmeansctl" ./cmd/hmeansctl
go build -o "$SMOKE_DIR/hmeans" ./cmd/hmeans
go build -o "$SMOKE_DIR/report" ./cmd/report
go build -o "$SMOKE_DIR/hmeansload" ./cmd/hmeansload
go run ./cmd/benchsim -emit sar > "$SMOKE_DIR/sar.csv"
go run ./cmd/benchsim -emit speedups > "$SMOKE_DIR/speedups.csv"

"$SMOKE_DIR/hmeansd" -addr 127.0.0.1:0 -cache-size 16 \
    -snapshot "$SMOKE_DIR/cache.snap" -drain.timeout 5s \
    -access-log "$SMOKE_DIR/access.log" -runtime-sample 100ms \
    -obs.trace "$SMOKE_DIR/trace.jsonl" > "$SMOKE_DIR/hmeansd.log" 2>&1 &
DAEMON=$!
trap 'kill "$DAEMON" 2>/dev/null || true' EXIT

# The daemon prints its ephemeral address once the listener is up.
ADDR=""
for _ in $(seq 1 100); do
    ADDR="$(sed -n 's/.*listening on \(http:\/\/[0-9.:]*\).*/\1/p' "$SMOKE_DIR/hmeansd.log")"
    [ -n "$ADDR" ] && break
    sleep 0.1
done
[ -n "$ADDR" ] || { echo "serve-smoke: daemon never came up" >&2; cat "$SMOKE_DIR/hmeansd.log" >&2; exit 1; }
echo "serve-smoke: daemon at $ADDR"

"$SMOKE_DIR/hmeansctl" -addr "$ADDR" -health > /dev/null

# The service must agree with the batch CLI line for line: same
# quarantine lines, same hierarchical/plain geometric means at k=6,
# same cluster memberships.
"$SMOKE_DIR/hmeans" -scores "$SMOKE_DIR/speedups.csv" -chars "$SMOKE_DIR/sar.csv" -k 6 \
    > "$SMOKE_DIR/batch.out"
"$SMOKE_DIR/hmeansctl" -addr "$ADDR" -scores "$SMOKE_DIR/speedups.csv" -chars "$SMOKE_DIR/sar.csv" -k 6 \
    -request-id smoke-ctl-1 -v \
    > "$SMOKE_DIR/service.out" 2> "$SMOKE_DIR/service.err"
diff -u "$SMOKE_DIR/batch.out" "$SMOKE_DIR/service.out" || {
    echo "serve-smoke: service result diverges from the batch CLI" >&2; exit 1; }
grep -q 'request: smoke-ctl-1' "$SMOKE_DIR/service.err" || {
    echo "serve-smoke: hmeansctl -v did not report its request ID" >&2
    cat "$SMOKE_DIR/service.err" >&2; exit 1; }

# The HGM is the paper's headline number; require it to be present and
# positive in both outputs (the diff above already proved equality).
HGM="$(sed -n 's/^hierarchical geometric mean (k=6): //p' "$SMOKE_DIR/batch.out")"
case "$HGM" in
    ''|0.0000|-*) echo "serve-smoke: implausible HGM '$HGM'" >&2; exit 1 ;;
esac
echo "serve-smoke: service HGM matches batch CLI: $HGM"

# A repeat of the same request must be a cache hit with identical raw
# bytes — the bit-identical-cache contract, over the wire.
"$SMOKE_DIR/hmeansctl" -addr "$ADDR" -scores "$SMOKE_DIR/speedups.csv" -chars "$SMOKE_DIR/sar.csv" -k 6 \
    -json -v > "$SMOKE_DIR/raw1.json" 2> "$SMOKE_DIR/raw1.err"
"$SMOKE_DIR/hmeansctl" -addr "$ADDR" -scores "$SMOKE_DIR/speedups.csv" -chars "$SMOKE_DIR/sar.csv" -k 6 \
    -json -v > "$SMOKE_DIR/raw2.json" 2> "$SMOKE_DIR/raw2.err"
grep -q 'cache: hit' "$SMOKE_DIR/raw2.err" || {
    echo "serve-smoke: repeat request was not a cache hit" >&2; cat "$SMOKE_DIR/raw2.err" >&2; exit 1; }
cmp "$SMOKE_DIR/raw1.json" "$SMOKE_DIR/raw2.json" || {
    echo "serve-smoke: cache hit bytes differ from cold-path bytes" >&2; exit 1; }
echo "serve-smoke: cache hit is byte-identical"

# A short load run against the same daemon: the report names its
# slowest requests by the X-Request-IDs it sent, giving us a second,
# machine-chosen ID to trace through the server-side artifacts.
"$SMOKE_DIR/hmeansload" -addr "$ADDR" -rps 100 -n 30 -seed 7 \
    -mix "hit=70,miss=30,invalid=0" -workloads 13 -features 6 \
    -o "$SMOKE_DIR/smoke-load.json" > "$SMOKE_DIR/hmeansload.out"
SLOW_ID="$(sed -n 's/.*"request_id": "\(load-[^"]*\)".*/\1/p' "$SMOKE_DIR/smoke-load.json" | head -n 1)"
[ -n "$SLOW_ID" ] || {
    echo "serve-smoke: load report names no slowest request" >&2
    cat "$SMOKE_DIR/smoke-load.json" >&2; exit 1; }
echo "serve-smoke: slowest load request was $SLOW_ID"

# /metrics speaks both formats: JSON (the default, dotted names) and
# the Prometheus text exposition (content-negotiated), which must pass
# the format validator.
curl -sf "$ADDR/metrics?format=json" > "$SMOKE_DIR/metrics.json"
grep -q 'service.requests' "$SMOKE_DIR/metrics.json" || {
    echo "serve-smoke: JSON /metrics lacks service counters" >&2; exit 1; }
curl -sf -H 'Accept: text/plain' "$ADDR/metrics" > "$SMOKE_DIR/metrics.prom"
grep -q '^service_requests ' "$SMOKE_DIR/metrics.prom" || {
    echo "serve-smoke: Prometheus /metrics lacks service counters" >&2
    cat "$SMOKE_DIR/metrics.prom" >&2; exit 1; }
"$SMOKE_DIR/report" -validate-metrics "$SMOKE_DIR/metrics.prom"

# Graceful shutdown flushes the trace; validate it like obs-trace does.
kill "$DAEMON"
wait "$DAEMON" || { echo "serve-smoke: daemon exited non-zero" >&2; exit 1; }
trap - EXIT
grep -q 'shut down' "$SMOKE_DIR/hmeansd.log" || {
    echo "serve-smoke: no graceful shutdown line" >&2; cat "$SMOKE_DIR/hmeansd.log" >&2; exit 1; }
"$SMOKE_DIR/report" -validate-trace "$SMOKE_DIR/trace.jsonl"

# Cross-process correlation: both request IDs — the one hmeansctl
# chose and the one hmeansload reported — must appear in the daemon's
# access log AND its JSONL trace, and -request must pull the ctl
# request's server-side span breakdown out of the trace.
for id in smoke-ctl-1 "$SLOW_ID"; do
    grep -q "$id" "$SMOKE_DIR/access.log" || {
        echo "serve-smoke: access log has no line for $id" >&2; exit 1; }
    grep -q "$id" "$SMOKE_DIR/trace.jsonl" || {
        echo "serve-smoke: trace has no span for $id" >&2; exit 1; }
done
"$SMOKE_DIR/report" -timings "$SMOKE_DIR/trace.jsonl" -request smoke-ctl-1 \
    > "$SMOKE_DIR/request-timings.out"
grep -q 'request smoke-ctl-1' "$SMOKE_DIR/request-timings.out" || {
    echo "serve-smoke: no per-request timing table" >&2
    cat "$SMOKE_DIR/request-timings.out" >&2; exit 1; }
echo "serve-smoke: request IDs correlate across client, access log and trace"

# Warm restart: the graceful shutdown above must have written the
# cache snapshot; a fresh daemon booted from it must answer the same
# request as a cache hit, byte-identical to the pre-restart response
# — the crash-safety contract, cold kill to warm boot, over the wire.
grep -q 'wrote snapshot' "$SMOKE_DIR/hmeansd.log" || {
    echo "serve-smoke: graceful shutdown wrote no snapshot" >&2
    cat "$SMOKE_DIR/hmeansd.log" >&2; exit 1; }
[ -s "$SMOKE_DIR/cache.snap" ] || {
    echo "serve-smoke: snapshot file missing or empty" >&2; exit 1; }
"$SMOKE_DIR/hmeansd" -addr 127.0.0.1:0 -cache-size 16 \
    -snapshot "$SMOKE_DIR/cache.snap" > "$SMOKE_DIR/hmeansd3.log" 2>&1 &
DAEMON3=$!
trap 'kill "$DAEMON3" 2>/dev/null || true' EXIT
ADDR3=""
for _ in $(seq 1 100); do
    ADDR3="$(sed -n 's/.*listening on \(http:\/\/[0-9.:]*\).*/\1/p' "$SMOKE_DIR/hmeansd3.log")"
    [ -n "$ADDR3" ] && break
    sleep 0.1
done
[ -n "$ADDR3" ] || { echo "serve-smoke: warm daemon never came up" >&2; cat "$SMOKE_DIR/hmeansd3.log" >&2; exit 1; }
grep -q 'restored' "$SMOKE_DIR/hmeansd3.log" || {
    echo "serve-smoke: warm daemon restored nothing from the snapshot" >&2
    cat "$SMOKE_DIR/hmeansd3.log" >&2; exit 1; }
curl -sf "$ADDR3/readyz" > /dev/null || {
    echo "serve-smoke: warm daemon not ready" >&2; exit 1; }
"$SMOKE_DIR/hmeansctl" -addr "$ADDR3" -scores "$SMOKE_DIR/speedups.csv" -chars "$SMOKE_DIR/sar.csv" -k 6 \
    -json -v > "$SMOKE_DIR/raw3.json" 2> "$SMOKE_DIR/raw3.err"
grep -q 'cache: hit' "$SMOKE_DIR/raw3.err" || {
    echo "serve-smoke: first post-restart request was not a warm cache hit" >&2
    cat "$SMOKE_DIR/raw3.err" >&2; exit 1; }
cmp "$SMOKE_DIR/raw1.json" "$SMOKE_DIR/raw3.json" || {
    echo "serve-smoke: warm-restart bytes differ from pre-restart bytes" >&2; exit 1; }
kill "$DAEMON3"
wait "$DAEMON3" || { echo "serve-smoke: warm daemon exited non-zero" >&2; exit 1; }
trap - EXIT
echo "serve-smoke: warm restart serves byte-identical cache hits"

# Shed paths are telemetry too: an undersized daemon under sustained
# closed-loop pressure (8 workers, no think time, no retries) must log
# its 429s with the shed reason and Retry-After. The closed loop keeps
# concurrent requests in flight for the whole run, so shedding does
# not depend on a one-shot burst landing just right.
"$SMOKE_DIR/hmeansd" -addr 127.0.0.1:0 -cache-size 0 \
    -max-inflight 1 -queue-depth 0 \
    -access-log "$SMOKE_DIR/access2.log" > "$SMOKE_DIR/hmeansd2.log" 2>&1 &
DAEMON2=$!
trap 'kill "$DAEMON2" 2>/dev/null || true' EXIT
ADDR2=""
for _ in $(seq 1 100); do
    ADDR2="$(sed -n 's/.*listening on \(http:\/\/[0-9.:]*\).*/\1/p' "$SMOKE_DIR/hmeansd2.log")"
    [ -n "$ADDR2" ] && break
    sleep 0.1
done
[ -n "$ADDR2" ] || { echo "serve-smoke: shed daemon never came up" >&2; exit 1; }
"$SMOKE_DIR/hmeansload" -addr "$ADDR2" -mode closed -concurrency 8 -rps 0 \
    -n 40 -seed 11 -max-retries 0 \
    -mix "hit=0,miss=100,invalid=0" > "$SMOKE_DIR/hmeansload-shed.out"
kill "$DAEMON2"
wait "$DAEMON2" || { echo "serve-smoke: shed daemon exited non-zero" >&2; exit 1; }
trap - EXIT
grep -q '"status":429' "$SMOKE_DIR/access2.log" || {
    echo "serve-smoke: no shed 429 in the undersized daemon's access log" >&2
    cat "$SMOKE_DIR/access2.log" >&2; exit 1; }
grep '"status":429' "$SMOKE_DIR/access2.log" | head -n 1 | grep -q 'pool_and_queue_full' || {
    echo "serve-smoke: shed line lacks its shed_reason" >&2; exit 1; }
grep '"status":429' "$SMOKE_DIR/access2.log" | head -n 1 | grep -q 'retry_after' || {
    echo "serve-smoke: shed line lacks retry_after" >&2; exit 1; }
echo "serve-smoke: shed 429s are logged with reason and Retry-After"
echo "serve-smoke: ok"
