#!/bin/sh
# serve_smoke.sh — end-to-end service smoke test (the CI serve-smoke
# job, runnable locally as `make serve-smoke`).
#
# Boots hmeansd with tracing on, scores the paper's 13-workload case
# study through hmeansctl, and requires the rendered result to be
# line-identical to the batch hmeans CLI on the same inputs — the
# service and the CLI must never disagree about a mean. Also checks
# that a repeated request is answered from the cache with identical
# bytes, and validates the request trace the daemon wrote.
#
# Artifacts land in $SMOKE_DIR (default: a fresh temp dir).
set -eu

SMOKE_DIR="${SMOKE_DIR:-$(mktemp -d)}"
echo "serve-smoke: artifacts in $SMOKE_DIR"

go build -o "$SMOKE_DIR/hmeansd" ./cmd/hmeansd
go build -o "$SMOKE_DIR/hmeansctl" ./cmd/hmeansctl
go build -o "$SMOKE_DIR/hmeans" ./cmd/hmeans
go build -o "$SMOKE_DIR/report" ./cmd/report
go run ./cmd/benchsim -emit sar > "$SMOKE_DIR/sar.csv"
go run ./cmd/benchsim -emit speedups > "$SMOKE_DIR/speedups.csv"

"$SMOKE_DIR/hmeansd" -addr 127.0.0.1:0 -cache-size 16 \
    -obs.trace "$SMOKE_DIR/trace.jsonl" > "$SMOKE_DIR/hmeansd.log" 2>&1 &
DAEMON=$!
trap 'kill "$DAEMON" 2>/dev/null || true' EXIT

# The daemon prints its ephemeral address once the listener is up.
ADDR=""
for _ in $(seq 1 100); do
    ADDR="$(sed -n 's/.*listening on \(http:\/\/[0-9.:]*\).*/\1/p' "$SMOKE_DIR/hmeansd.log")"
    [ -n "$ADDR" ] && break
    sleep 0.1
done
[ -n "$ADDR" ] || { echo "serve-smoke: daemon never came up" >&2; cat "$SMOKE_DIR/hmeansd.log" >&2; exit 1; }
echo "serve-smoke: daemon at $ADDR"

"$SMOKE_DIR/hmeansctl" -addr "$ADDR" -health > /dev/null

# The service must agree with the batch CLI line for line: same
# quarantine lines, same hierarchical/plain geometric means at k=6,
# same cluster memberships.
"$SMOKE_DIR/hmeans" -scores "$SMOKE_DIR/speedups.csv" -chars "$SMOKE_DIR/sar.csv" -k 6 \
    > "$SMOKE_DIR/batch.out"
"$SMOKE_DIR/hmeansctl" -addr "$ADDR" -scores "$SMOKE_DIR/speedups.csv" -chars "$SMOKE_DIR/sar.csv" -k 6 \
    > "$SMOKE_DIR/service.out" 2> "$SMOKE_DIR/service.err"
diff -u "$SMOKE_DIR/batch.out" "$SMOKE_DIR/service.out" || {
    echo "serve-smoke: service result diverges from the batch CLI" >&2; exit 1; }

# The HGM is the paper's headline number; require it to be present and
# positive in both outputs (the diff above already proved equality).
HGM="$(sed -n 's/^hierarchical geometric mean (k=6): //p' "$SMOKE_DIR/batch.out")"
case "$HGM" in
    ''|0.0000|-*) echo "serve-smoke: implausible HGM '$HGM'" >&2; exit 1 ;;
esac
echo "serve-smoke: service HGM matches batch CLI: $HGM"

# A repeat of the same request must be a cache hit with identical raw
# bytes — the bit-identical-cache contract, over the wire.
"$SMOKE_DIR/hmeansctl" -addr "$ADDR" -scores "$SMOKE_DIR/speedups.csv" -chars "$SMOKE_DIR/sar.csv" -k 6 \
    -json -v > "$SMOKE_DIR/raw1.json" 2> "$SMOKE_DIR/raw1.err"
"$SMOKE_DIR/hmeansctl" -addr "$ADDR" -scores "$SMOKE_DIR/speedups.csv" -chars "$SMOKE_DIR/sar.csv" -k 6 \
    -json -v > "$SMOKE_DIR/raw2.json" 2> "$SMOKE_DIR/raw2.err"
grep -q 'cache: hit' "$SMOKE_DIR/raw2.err" || {
    echo "serve-smoke: repeat request was not a cache hit" >&2; cat "$SMOKE_DIR/raw2.err" >&2; exit 1; }
cmp "$SMOKE_DIR/raw1.json" "$SMOKE_DIR/raw2.json" || {
    echo "serve-smoke: cache hit bytes differ from cold-path bytes" >&2; exit 1; }
echo "serve-smoke: cache hit is byte-identical"

# Service counters must be visible on the shared /metrics endpoint.
curl -sf "$ADDR/metrics" | grep -q 'service.requests' || {
    echo "serve-smoke: /metrics lacks service counters" >&2; exit 1; }

# Graceful shutdown flushes the trace; validate it like obs-trace does.
kill "$DAEMON"
wait "$DAEMON" || { echo "serve-smoke: daemon exited non-zero" >&2; exit 1; }
trap - EXIT
grep -q 'shut down' "$SMOKE_DIR/hmeansd.log" || {
    echo "serve-smoke: no graceful shutdown line" >&2; cat "$SMOKE_DIR/hmeansd.log" >&2; exit 1; }
"$SMOKE_DIR/report" -validate-trace "$SMOKE_DIR/trace.jsonl"
echo "serve-smoke: ok"
