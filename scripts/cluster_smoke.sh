#!/bin/sh
# cluster_smoke.sh — end-to-end horizontal-deployment smoke test (the
# CI cluster-smoke job, runnable locally as `make cluster-smoke`).
#
# Boots two hmeansd replicas and an hmeansgw gateway over them, replays
# the paper's 13-workload case study through the gateway, and requires:
#
#   - the gateway's rendered result is line-identical to the batch
#     hmeans CLI (the single-number contract survives the extra tier);
#   - the gateway's raw bytes are byte-identical to the serving
#     replica's direct answer (the byte-identity contract survives the
#     proxy hop), and a repeat is a cache hit routed to the same
#     sticky replica;
#   - a concurrent burst of one fresh request costs the fleet exactly
#     ONE compute (cross-replica singleflight, proven by the summed
#     service_cache_miss delta across both replicas' /metrics);
#   - a chosen X-Request-ID appears in BOTH hops' access logs — the
#     gateway's and the serving replica's — so one key correlates the
#     2-hop path;
#   - SIGTERMing one replica mid-load never surfaces an untyped 5xx:
#     the load report may contain 200s (and typed shed 429s), but no
#     500/502/503/504 — drain and failure are routing events, absorbed
#     by failover to the survivor.
#
# Ring state (/ring) is snapshotted at boot and on exit — on a red run
# the final snapshot says where keys were being routed. All artifacts
# land in $SMOKE_DIR (default: a fresh temp dir); CI uploads them even
# on failure.
set -eu

SMOKE_DIR="${SMOKE_DIR:-$(mktemp -d)}"
echo "cluster-smoke: artifacts in $SMOKE_DIR"

go build -o "$SMOKE_DIR/hmeansd" ./cmd/hmeansd
go build -o "$SMOKE_DIR/hmeansgw" ./cmd/hmeansgw
go build -o "$SMOKE_DIR/hmeansctl" ./cmd/hmeansctl
go build -o "$SMOKE_DIR/hmeans" ./cmd/hmeans
go build -o "$SMOKE_DIR/hmeansload" ./cmd/hmeansload
go run ./cmd/benchsim -emit sar > "$SMOKE_DIR/sar.csv"
go run ./cmd/benchsim -emit speedups > "$SMOKE_DIR/speedups.csv"

# wait_addr LOGFILE: echo the "listening on" address once it appears.
wait_addr() {
    addr=""
    for _ in $(seq 1 100); do
        addr="$(sed -n 's/.*listening on \(http:\/\/[0-9.:]*\).*/\1/p' "$1")"
        [ -n "$addr" ] && break
        sleep 0.1
    done
    [ -n "$addr" ] || { echo "cluster-smoke: $1 never reported an address" >&2; cat "$1" >&2; exit 1; }
    echo "$addr"
}

# -obs.trace turns recording on, so each replica's /metrics exposes
# the service counters the singleflight leg sums (and the traces are
# artifacts in their own right).
"$SMOKE_DIR/hmeansd" -addr 127.0.0.1:0 -cache-size 32 \
    -access-log "$SMOKE_DIR/replica1-access.log" \
    -obs.trace "$SMOKE_DIR/replica1-trace.jsonl" \
    > "$SMOKE_DIR/replica1.log" 2>&1 &
REPLICA1=$!
"$SMOKE_DIR/hmeansd" -addr 127.0.0.1:0 -cache-size 32 \
    -access-log "$SMOKE_DIR/replica2-access.log" \
    -obs.trace "$SMOKE_DIR/replica2-trace.jsonl" \
    > "$SMOKE_DIR/replica2.log" 2>&1 &
REPLICA2=$!
cleanup() {
    # Best-effort final ring snapshot: on a red run this is the routing
    # state at the moment of failure.
    [ -n "${GW:-}" ] && curl -s "$GW/ring" > "$SMOKE_DIR/ring-final.json" 2>/dev/null || true
    kill "$REPLICA1" "$REPLICA2" "${GATEWAY:-}" 2>/dev/null || true
}
trap cleanup EXIT
ADDR1="$(wait_addr "$SMOKE_DIR/replica1.log")"
ADDR2="$(wait_addr "$SMOKE_DIR/replica2.log")"
echo "cluster-smoke: replicas at $ADDR1 and $ADDR2"

"$SMOKE_DIR/hmeansgw" -addr 127.0.0.1:0 \
    -replica "$ADDR1" -replica "$ADDR2" \
    -access-log "$SMOKE_DIR/gateway-access.log" \
    -obs.trace "$SMOKE_DIR/gateway-trace.jsonl" \
    > "$SMOKE_DIR/gateway.log" 2>&1 &
GATEWAY=$!
GW="$(wait_addr "$SMOKE_DIR/gateway.log")"
echo "cluster-smoke: gateway at $GW"

curl -sf "$GW/ring" > "$SMOKE_DIR/ring-initial.json"
curl -sf "$GW/readyz" > "$SMOKE_DIR/readyz-initial.json" || {
    echo "cluster-smoke: gateway not ready with both replicas up" >&2
    cat "$SMOKE_DIR/readyz-initial.json" >&2; exit 1; }
"$SMOKE_DIR/hmeansctl" -gateway "$GW" -health > /dev/null

# Leg 1: the rendered case-study result through the gateway must be
# line-identical to the batch CLI — three ways to compute one number
# (batch, replica, cluster), zero disagreements allowed.
"$SMOKE_DIR/hmeans" -scores "$SMOKE_DIR/speedups.csv" -chars "$SMOKE_DIR/sar.csv" -k 6 \
    > "$SMOKE_DIR/batch.out"
"$SMOKE_DIR/hmeansctl" -gateway "$GW" -scores "$SMOKE_DIR/speedups.csv" -chars "$SMOKE_DIR/sar.csv" -k 6 \
    -request-id smoke-gw-1 -v \
    > "$SMOKE_DIR/cluster.out" 2> "$SMOKE_DIR/cluster.err"
diff -u "$SMOKE_DIR/batch.out" "$SMOKE_DIR/cluster.out" || {
    echo "cluster-smoke: gateway result diverges from the batch CLI" >&2; exit 1; }
echo "cluster-smoke: gateway result matches the batch CLI"

# Leg 2: raw-byte identity through the hop. The -v output names the
# serving replica; its direct answer must be byte-for-byte the
# gateway's, and a gateway repeat must be a hit on the same replica.
"$SMOKE_DIR/hmeansctl" -gateway "$GW" -scores "$SMOKE_DIR/speedups.csv" -chars "$SMOKE_DIR/sar.csv" -k 6 \
    -json -v > "$SMOKE_DIR/gw1.json" 2> "$SMOKE_DIR/gw1.err"
HOME_REPLICA="$(sed -n 's/^replica: \(http:\/\/[0-9.:]*\) .*/\1/p' "$SMOKE_DIR/gw1.err")"
[ -n "$HOME_REPLICA" ] || {
    echo "cluster-smoke: hmeansctl -v reported no serving replica" >&2
    cat "$SMOKE_DIR/gw1.err" >&2; exit 1; }
"$SMOKE_DIR/hmeansctl" -addr "$HOME_REPLICA" -scores "$SMOKE_DIR/speedups.csv" -chars "$SMOKE_DIR/sar.csv" -k 6 \
    -json > "$SMOKE_DIR/direct.json"
cmp "$SMOKE_DIR/gw1.json" "$SMOKE_DIR/direct.json" || {
    echo "cluster-smoke: gateway bytes differ from the direct replica bytes" >&2; exit 1; }
"$SMOKE_DIR/hmeansctl" -gateway "$GW" -scores "$SMOKE_DIR/speedups.csv" -chars "$SMOKE_DIR/sar.csv" -k 6 \
    -json -v > "$SMOKE_DIR/gw2.json" 2> "$SMOKE_DIR/gw2.err"
grep -q 'cache: hit' "$SMOKE_DIR/gw2.err" || {
    echo "cluster-smoke: gateway repeat was not a cache hit" >&2
    cat "$SMOKE_DIR/gw2.err" >&2; exit 1; }
grep -q "replica: $HOME_REPLICA " "$SMOKE_DIR/gw2.err" || {
    echo "cluster-smoke: repeat was not routed to the sticky home $HOME_REPLICA" >&2
    cat "$SMOKE_DIR/gw2.err" >&2; exit 1; }
cmp "$SMOKE_DIR/gw1.json" "$SMOKE_DIR/gw2.json" || {
    echo "cluster-smoke: gateway cache-hit bytes differ" >&2; exit 1; }
echo "cluster-smoke: byte identity holds through the proxy hop (home: $HOME_REPLICA)"

# Leg 3: cross-replica singleflight. A concurrent burst of one FRESH
# request (new seed, never scored) must cost the fleet exactly one
# compute: the summed service_cache_miss across both replicas moves by
# exactly 1, and every client gets byte-identical bytes.
miss_total() {
    t=0
    for a in "$ADDR1" "$ADDR2"; do
        m="$(curl -sf -H 'Accept: text/plain' "$a/metrics" \
            | sed -n 's/^service_cache_miss \([0-9]*\)$/\1/p')"
        t=$((t + ${m:-0}))
    done
    echo "$t"
}
BEFORE="$(miss_total)"
BURST=""
for i in 1 2 3 4 5 6; do
    "$SMOKE_DIR/hmeansctl" -gateway "$GW" -scores "$SMOKE_DIR/speedups.csv" -chars "$SMOKE_DIR/sar.csv" \
        -k 6 -seed 4242 -json > "$SMOKE_DIR/sf$i.json" 2> "$SMOKE_DIR/sf$i.err" &
    BURST="$BURST $!"
done
# Wait for the burst only — a bare `wait` would also wait on the
# daemons, which never exit on their own.
for pid in $BURST; do
    wait "$pid" || { echo "cluster-smoke: burst client $pid failed" >&2; exit 1; }
done
AFTER="$(miss_total)"
DELTA=$((AFTER - BEFORE))
[ "$DELTA" -eq 1 ] || {
    echo "cluster-smoke: concurrent burst cost $DELTA computes, want exactly 1 (cross-replica singleflight)" >&2
    exit 1; }
for i in 2 3 4 5 6; do
    cmp "$SMOKE_DIR/sf1.json" "$SMOKE_DIR/sf$i.json" || {
        echo "cluster-smoke: burst response $i differs from response 1" >&2; exit 1; }
done
echo "cluster-smoke: 6 concurrent identical requests, exactly 1 fleet-wide compute"

# Leg 4: 2-hop request-ID correlation. smoke-gw-1 must appear in the
# gateway's access log AND in the serving replica's — one key, both
# tiers.
grep -q 'smoke-gw-1' "$SMOKE_DIR/gateway-access.log" || {
    echo "cluster-smoke: gateway access log has no line for smoke-gw-1" >&2
    cat "$SMOKE_DIR/gateway-access.log" >&2; exit 1; }
grep -q 'smoke-gw-1' "$SMOKE_DIR/replica1-access.log" "$SMOKE_DIR/replica2-access.log" || {
    echo "cluster-smoke: no replica access log carries smoke-gw-1 — the ID did not cross the hop" >&2
    exit 1; }
echo "cluster-smoke: request ID correlates across both hops"

# Leg 5: replica death is a routing event. Drive a closed-loop load at
# the gateway and SIGTERM replica 1 mid-run: the survivor absorbs the
# traffic and the client never sees an untyped 5xx — no 500/502/503/
# 504 in the report's status counts, zero errors.
# Paced closed loop, SIGTERM keyed to observed progress (not wall
# clock): wait until the gateway access log shows the run well under
# way but far from done, so the kill provably lands mid-load.
"$SMOKE_DIR/hmeansload" -addr "$GW" -mode closed -concurrency 4 -rps 30 \
    -n 300 -seed 13 -max-retries 3 \
    -mix "hit=50,miss=50,invalid=0" -workloads 13 -features 6 \
    -o "$SMOKE_DIR/cluster-load.json" > "$SMOKE_DIR/hmeansload.out" 2>&1 &
LOAD=$!
for _ in $(seq 1 200); do
    [ "$(grep -c 'load-13-' "$SMOKE_DIR/gateway-access.log")" -ge 50 ] && break
    sleep 0.05
done
kill -TERM "$REPLICA1"
wait "$LOAD" || {
    echo "cluster-smoke: load run failed during replica SIGTERM" >&2
    cat "$SMOKE_DIR/hmeansload.out" >&2; exit 1; }
wait "$REPLICA1" || { echo "cluster-smoke: SIGTERMed replica exited non-zero" >&2; exit 1; }
grep -Eq '"(500|502|503|504)"' "$SMOKE_DIR/cluster-load.json" && {
    echo "cluster-smoke: untyped 5xx leaked through the gateway during replica death" >&2
    cat "$SMOKE_DIR/cluster-load.json" >&2; exit 1; }
grep -q '"error_rate": 0,' "$SMOKE_DIR/cluster-load.json" || {
    echo "cluster-smoke: replica death produced client-visible errors" >&2
    cat "$SMOKE_DIR/cluster-load.json" >&2; exit 1; }
# The kill must have landed mid-load: the gateway's failover counter
# moved, i.e. some requests homed on the dead replica were rerouted.
curl -sf -H 'Accept: text/plain' "$GW/metrics" > "$SMOKE_DIR/gateway-metrics.prom"
FAILOVER="$(sed -n 's/^gateway_route_failover \([0-9]*\)$/\1/p' "$SMOKE_DIR/gateway-metrics.prom")"
[ "${FAILOVER:-0}" -ge 1 ] || {
    echo "cluster-smoke: no failover recorded — the SIGTERM landed after the load finished" >&2
    exit 1; }
echo "cluster-smoke: replica SIGTERM mid-load: zero untyped 5xx, zero errors, $FAILOVER failovers"

# The survivor alone still answers, and /ring shows the dead replica's
# breaker open (or half-open, if the cooldown elapsed before this
# snapshot) — failure is visible routing state, not silence.
"$SMOKE_DIR/hmeansctl" -gateway "$GW" -scores "$SMOKE_DIR/speedups.csv" -chars "$SMOKE_DIR/sar.csv" -k 6 \
    > "$SMOKE_DIR/survivor.out"
diff -u "$SMOKE_DIR/batch.out" "$SMOKE_DIR/survivor.out" || {
    echo "cluster-smoke: survivor-only result diverges from the batch CLI" >&2; exit 1; }
curl -sf "$GW/ring" > "$SMOKE_DIR/ring-after-sigterm.json"
grep -Eq '"breaker": "(open|half-open)"' "$SMOKE_DIR/ring-after-sigterm.json" || {
    echo "cluster-smoke: /ring does not show the dead replica's breaker open" >&2
    cat "$SMOKE_DIR/ring-after-sigterm.json" >&2; exit 1; }
echo "cluster-smoke: survivor serves the case study; /ring shows the dead replica tripped"

# Graceful teardown: gateway and survivor must both exit clean.
kill -TERM "$GATEWAY"
wait "$GATEWAY" || { echo "cluster-smoke: gateway exited non-zero" >&2; exit 1; }
kill -TERM "$REPLICA2"
wait "$REPLICA2" || { echo "cluster-smoke: surviving replica exited non-zero" >&2; exit 1; }
GATEWAY=""
echo "cluster-smoke: ok"
